//! Lock-free telemetry: metric registry, spans, event log, and the live
//! campaign snapshot that `campaign-admin top` and the dispatcher tail.
//!
//! # Design
//!
//! **Recording is always on; exposition is opt-in.** Every counter
//! bump, histogram sample and span is recorded unconditionally — the
//! hot-path cost is a relaxed atomic add on a per-thread shard (and the
//! engine batches even those per 16-packet shard, not per packet).
//! What `--telemetry` / [`set_enabled`] toggles is purely the *output*:
//! the live snapshot JSON, the JSONL event log and the Prometheus text
//! file a campaign writes under its store directory. Because recording
//! never branches on the flag, telemetry on/off cannot perturb the
//! simulation — manifests stay byte-identical either way (pinned by
//! `tests/telemetry.rs`).
//!
//! **Per-thread shards, aggregated at snapshot time.** Each thread that
//! records owns an `Arc<Shard>` of atomics registered in a global list;
//! [`snapshot`] sums the live shards plus a *retired* shard that
//! absorbs the tallies of exited threads (the engine spawns scoped
//! workers per run, so without the retirement merge the registry would
//! grow without bound and drop counts). No lock is held on the record
//! path — only registration/retirement and snapshotting take the
//! registry mutex, and those are rare.
//!
//! **Zero steady-state heap.** Shards are fixed arrays of `AtomicU64`;
//! recording allocates nothing after a thread's first touch (one
//! `Arc<Shard>` per thread, made during warm-up). The allocation-free
//! packet path pinned by `tests/alloc_regression.rs` is untouched.
//!
//! Metric *identity* is a closed enum ([`Counter`], [`Gauge`],
//! [`Histogram`]) rather than string keys: registration is `O(1)` array
//! indexing, typos are compile errors, and the Prometheus exposition
//! can enumerate the full catalog.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bucket count of every histogram (15 finite upper bounds + overflow).
pub const HIST_BUCKETS: usize = 16;

/// Prefix of every exposed metric name.
const PROM_PREFIX: &str = "resilience_";

// ---------------------------------------------------------------------------
// Metric catalog
// ---------------------------------------------------------------------------

/// Monotonic counters. Stage-time counters are nanosecond tallies
/// flushed from [`StageNanos`](crate::simulator::StageNanos) once per
/// engine shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Packets actually simulated (store hits excluded).
    PacketsSimulated,
    /// Lockstep decode waves executed by the batched engine path.
    WavesDecoded,
    /// Chunks served from the result store on fetch.
    StoreChunkHits,
    /// Chunk fetches that missed the store and had to simulate.
    StoreChunkMisses,
    /// Packets served from the store (sum of hit-chunk sizes).
    StorePacketsServed,
    /// Chunks appended to the store after simulation.
    StoreChunksWritten,
    /// Chunks the adaptive controller scheduled for execution.
    ChunksScheduled,
    /// Points that reached their convergence criterion.
    PointsConverged,
    /// Dispatcher: legs launched (first launches + rescues).
    LegsLaunched,
    /// Dispatcher: legs killed by the stall monitor.
    StallKills,
    /// Dispatcher: rescue legs launched over a dead leg's store.
    RescueAttempts,
    /// Dispatcher: completed merges of shard artifacts.
    MergesCompleted,
    /// Store: torn trailing records dropped while opening for resume
    /// (the tail a killed writer left mid-append).
    StoreTornTailsDropped,
    /// Segment store: index-sidecar entries that pointed at unreadable
    /// frames and were served as misses instead.
    StoreIndexStaleMisses,
    /// Dispatcher: leg launches that failed with an I/O error before
    /// the leg process existed.
    LaunchFailures,
    /// Dispatcher: relaunches delayed by the exponential-backoff policy.
    BackoffWaits,
    /// Dispatcher: dead shards split into slice sub-shards (elastic
    /// re-sharding events, not slice legs — one split may launch many).
    ReshardSplits,
    /// Dispatcher: shards abandoned after exhausting the attempt cap
    /// (the campaign degrades to a partial merge).
    ShardsAbandoned,
    /// Nanoseconds in the encode stage.
    StageEncodeNanos,
    /// Nanoseconds in the modulate stage.
    StageModulateNanos,
    /// Nanoseconds in the channel stage.
    StageChannelNanos,
    /// Nanoseconds in the equalize stage.
    StageEqualizeNanos,
    /// Nanoseconds in the demap stage.
    StageDemapNanos,
    /// Nanoseconds in the HARQ store/combine stage.
    StageHarqNanos,
    /// Nanoseconds in the turbo-decode stage.
    StageDecodeNanos,
}

impl Counter {
    /// Every counter, in exposition order.
    pub const ALL: [Counter; 25] = [
        Counter::PacketsSimulated,
        Counter::WavesDecoded,
        Counter::StoreChunkHits,
        Counter::StoreChunkMisses,
        Counter::StorePacketsServed,
        Counter::StoreChunksWritten,
        Counter::ChunksScheduled,
        Counter::PointsConverged,
        Counter::LegsLaunched,
        Counter::StallKills,
        Counter::RescueAttempts,
        Counter::MergesCompleted,
        Counter::StoreTornTailsDropped,
        Counter::StoreIndexStaleMisses,
        Counter::LaunchFailures,
        Counter::BackoffWaits,
        Counter::ReshardSplits,
        Counter::ShardsAbandoned,
        Counter::StageEncodeNanos,
        Counter::StageModulateNanos,
        Counter::StageChannelNanos,
        Counter::StageEqualizeNanos,
        Counter::StageDemapNanos,
        Counter::StageHarqNanos,
        Counter::StageDecodeNanos,
    ];
    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Exposition name (without the `resilience_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Counter::PacketsSimulated => "packets_simulated",
            Counter::WavesDecoded => "waves_decoded",
            Counter::StoreChunkHits => "store_chunk_hits",
            Counter::StoreChunkMisses => "store_chunk_misses",
            Counter::StorePacketsServed => "store_packets_served",
            Counter::StoreChunksWritten => "store_chunks_written",
            Counter::ChunksScheduled => "chunks_scheduled",
            Counter::PointsConverged => "points_converged",
            Counter::LegsLaunched => "legs_launched",
            Counter::StallKills => "stall_kills",
            Counter::RescueAttempts => "rescue_attempts",
            Counter::MergesCompleted => "merges_completed",
            Counter::StoreTornTailsDropped => "store_torn_tails_dropped",
            Counter::StoreIndexStaleMisses => "store_index_stale_misses",
            Counter::LaunchFailures => "launch_failures",
            Counter::BackoffWaits => "backoff_waits",
            Counter::ReshardSplits => "reshard_splits",
            Counter::ShardsAbandoned => "shards_abandoned",
            Counter::StageEncodeNanos => "stage_encode_nanos",
            Counter::StageModulateNanos => "stage_modulate_nanos",
            Counter::StageChannelNanos => "stage_channel_nanos",
            Counter::StageEqualizeNanos => "stage_equalize_nanos",
            Counter::StageDemapNanos => "stage_demap_nanos",
            Counter::StageHarqNanos => "stage_harq_nanos",
            Counter::StageDecodeNanos => "stage_decode_nanos",
        }
    }
}

/// Last-written-value metrics. Gauges are set from coordinator threads
/// (the campaign loop, the dispatcher) — they live on plain global
/// atomics, not per-thread shards, and a [`Snapshot::merge`] across
/// processes *sums* them (each leg reports its own slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Points owned by this campaign instance.
    PointsTotal,
    /// Of those, points currently converged.
    PointsConvergedNow,
    /// Dispatcher: legs currently running.
    LegsRunning,
}

impl Gauge {
    /// Every gauge, in exposition order.
    pub const ALL: [Gauge; 3] = [
        Gauge::PointsTotal,
        Gauge::PointsConvergedNow,
        Gauge::LegsRunning,
    ];
    /// Number of gauges.
    pub const COUNT: usize = Self::ALL.len();

    /// Exposition name (without the `resilience_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::PointsTotal => "points_total",
            Gauge::PointsConvergedNow => "points_converged_now",
            Gauge::LegsRunning => "legs_running",
        }
    }
}

/// Fixed-bucket histograms (15 finite upper bounds + an overflow
/// bucket; cumulative `le` semantics on exposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Histogram {
    /// Active lanes per batched decode wave (linear bounds `1..=15`;
    /// a full 16-lane wave lands in the overflow bucket).
    WaveLaneOccupancy,
    /// Packets per scheduled chunk (power-of-two bounds, matching the
    /// controller's doubling schedule).
    ChunkPackets,
}

impl Histogram {
    /// Every histogram, in exposition order.
    pub const ALL: [Histogram; 2] = [Histogram::WaveLaneOccupancy, Histogram::ChunkPackets];
    /// Number of histograms.
    pub const COUNT: usize = Self::ALL.len();

    /// Exposition name (without the `resilience_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Histogram::WaveLaneOccupancy => "wave_lane_occupancy",
            Histogram::ChunkPackets => "chunk_packets",
        }
    }

    /// The 15 finite upper bounds; values above the last land in the
    /// overflow bucket.
    pub fn bounds(self) -> &'static [u64; HIST_BUCKETS - 1] {
        match self {
            Histogram::WaveLaneOccupancy => &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
            Histogram::ChunkPackets => &[
                1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
            ],
        }
    }
}

/// Index of the bucket `value` falls into (first bound `>= value`,
/// else the overflow bucket).
fn bucket_index(bounds: &[u64; HIST_BUCKETS - 1], value: u64) -> usize {
    bounds
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(HIST_BUCKETS - 1)
}

// ---------------------------------------------------------------------------
// Shards and the global registry
// ---------------------------------------------------------------------------

struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// One thread's slice of the metric state. All loads/stores are
/// `Relaxed`: counters are statistically read, never used for
/// synchronization.
struct Shard {
    counters: [AtomicU64; Counter::COUNT],
    hists: [HistShard; Histogram::COUNT],
}

impl Shard {
    const fn new() -> Self {
        Self {
            counters: [const { AtomicU64::new(0) }; Counter::COUNT],
            hists: [const { HistShard::new() }; Histogram::COUNT],
        }
    }

    fn counter_add(&self, c: Counter, v: u64) {
        self.counters[c as usize].fetch_add(v, Ordering::Relaxed);
    }

    fn hist_record(&self, h: Histogram, value: u64) {
        let hs = &self.hists[h as usize];
        hs.buckets[bucket_index(h.bounds(), value)].fetch_add(1, Ordering::Relaxed);
        hs.count.fetch_add(1, Ordering::Relaxed);
        hs.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Adds `other`'s tallies into `self` (used to retire the shard of
    /// an exiting thread into the base shard).
    fn absorb(&self, other: &Shard) {
        for (into, from) in self.counters.iter().zip(&other.counters) {
            into.fetch_add(from.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (into, from) in self.hists.iter().zip(&other.hists) {
            for (b_into, b_from) in into.buckets.iter().zip(&from.buckets) {
                b_into.fetch_add(b_from.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            into.count
                .fetch_add(from.count.load(Ordering::Relaxed), Ordering::Relaxed);
            into.sum
                .fetch_add(from.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Adds this shard's tallies into a [`Snapshot`].
    fn add_into(&self, snap: &mut Snapshot) {
        for (into, from) in snap.counters.iter_mut().zip(&self.counters) {
            *into += from.load(Ordering::Relaxed);
        }
        for (into, from) in snap.hists.iter_mut().zip(&self.hists) {
            for (b_into, b_from) in into.buckets.iter_mut().zip(&from.buckets) {
                *b_into += b_from.load(Ordering::Relaxed);
            }
            into.count += from.count.load(Ordering::Relaxed);
            into.sum += from.sum.load(Ordering::Relaxed);
        }
    }
}

struct Registry {
    /// Live per-thread shards. Locked only on register / retire /
    /// snapshot — never on the record path.
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Tallies of threads that have exited.
    retired: Shard,
    gauges: [AtomicU64; Gauge::COUNT],
}

static REGISTRY: Registry = Registry {
    shards: Mutex::new(Vec::new()),
    retired: Shard::new(),
    gauges: [const { AtomicU64::new(0) }; Gauge::COUNT],
};

/// RAII registration of a thread's shard; `Drop` folds the tallies into
/// the retired shard so scoped engine workers neither leak registry
/// slots nor lose counts.
struct LocalShard(Arc<Shard>);

impl Drop for LocalShard {
    fn drop(&mut self) {
        REGISTRY.retired.absorb(&self.0);
        if let Ok(mut shards) = REGISTRY.shards.lock() {
            shards.retain(|s| !Arc::ptr_eq(s, &self.0));
        }
    }
}

thread_local! {
    static LOCAL: LocalShard = {
        let shard = Arc::new(Shard::new());
        REGISTRY
            .shards
            .lock()
            .expect("telemetry registry poisoned")
            .push(Arc::clone(&shard));
        LocalShard(shard)
    };
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// Adds `v` to counter `c` on this thread's shard.
#[inline]
pub fn counter_add(c: Counter, v: u64) {
    if v == 0 {
        return;
    }
    // A thread at TLS-destruction time can no longer record; dropping
    // the sample is correct (its shard was already retired).
    let _ = LOCAL.try_with(|l| l.0.counter_add(c, v));
}

/// Records one `value` sample into histogram `h`.
#[inline]
pub fn hist_record(h: Histogram, value: u64) {
    let _ = LOCAL.try_with(|l| l.0.hist_record(h, value));
}

/// Sets gauge `g` to `v`.
#[inline]
pub fn gauge_set(g: Gauge, v: u64) {
    REGISTRY.gauges[g as usize].store(v, Ordering::Relaxed);
}

/// Adds the signed `delta` to gauge `g` (saturating at zero).
pub fn gauge_add(g: Gauge, delta: i64) {
    let cell = &REGISTRY.gauges[g as usize];
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add_signed(delta);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A scope timer: created at stage entry, adds the elapsed nanoseconds
/// to `counter` on drop. For the per-packet stages the `stage!` macro
/// in `simulator.rs` is the cheaper inlined form (plain `u64` in
/// scratch, flushed per engine shard); spans are for coarse
/// coordinator-side scopes where one atomic add is negligible.
pub struct Span {
    counter: Counter,
    start: Instant,
}

/// Starts a [`Span`] that reports into `counter` when dropped.
pub fn span(counter: Counter) -> Span {
    Span {
        counter,
        start: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        counter_add(self.counter, self.start.elapsed().as_nanos() as u64);
    }
}

// ---------------------------------------------------------------------------
// Enablement (exposition only — recording never consults this)
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry *file output* on or off process-wide (`--telemetry`
/// sets this). Recording is unconditional either way, which is what
/// guarantees on/off byte-identical campaign results.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry file output is enabled process-wide.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Point-in-time aggregate of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (not cumulative; exposition cumulates).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of sample values.
    pub sum: u64,
}

/// Point-in-time aggregate of every metric: retired shard + all live
/// thread shards + gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    hists: [HistSnapshot; Histogram::COUNT],
}

/// Aggregates the current process-wide metric state.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    REGISTRY.retired.add_into(&mut snap);
    for shard in REGISTRY
        .shards
        .lock()
        .expect("telemetry registry poisoned")
        .iter()
    {
        shard.add_into(&mut snap);
    }
    for (into, from) in snap.gauges.iter_mut().zip(&REGISTRY.gauges) {
        *into = from.load(Ordering::Relaxed);
    }
    snap
}

impl Snapshot {
    /// Value of counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Value of gauge `g`.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Aggregate of histogram `h`.
    pub fn hist(&self, h: Histogram) -> &HistSnapshot {
        &self.hists[h as usize]
    }

    /// Folds `other` into `self`: counters and histogram buckets add;
    /// gauges add too (each process reports its own slice, so the sum
    /// is the fleet total).
    pub fn merge(&mut self, other: &Snapshot) {
        for (into, from) in self.counters.iter_mut().zip(&other.counters) {
            *into += from;
        }
        for (into, from) in self.gauges.iter_mut().zip(&other.gauges) {
            *into += from;
        }
        for (into, from) in self.hists.iter_mut().zip(&other.hists) {
            for (b_into, b_from) in into.buckets.iter_mut().zip(&from.buckets) {
                *b_into += b_from;
            }
            into.count += from.count;
            into.sum += from.sum;
        }
    }

    /// Prometheus text exposition of the full catalog.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            let name = c.name();
            out.push_str(&format!(
                "# TYPE {PROM_PREFIX}{name} counter\n{PROM_PREFIX}{name} {}\n",
                self.counter(c)
            ));
        }
        for g in Gauge::ALL {
            let name = g.name();
            out.push_str(&format!(
                "# TYPE {PROM_PREFIX}{name} gauge\n{PROM_PREFIX}{name} {}\n",
                self.gauge(g)
            ));
        }
        for h in Histogram::ALL {
            let name = h.name();
            let hs = self.hist(h);
            out.push_str(&format!("# TYPE {PROM_PREFIX}{name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &bucket) in hs.buckets.iter().enumerate() {
                cumulative += bucket;
                if i < HIST_BUCKETS - 1 {
                    out.push_str(&format!(
                        "{PROM_PREFIX}{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        h.bounds()[i]
                    ));
                } else {
                    out.push_str(&format!(
                        "{PROM_PREFIX}{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"
                    ));
                }
            }
            out.push_str(&format!(
                "{PROM_PREFIX}{name}_sum {}\n{PROM_PREFIX}{name}_count {}\n",
                hs.sum, hs.count
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// JSONL event log
// ---------------------------------------------------------------------------

/// A field value of a JSONL event.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer field.
    U64(u64),
    /// Float field (rendered with 6 decimals).
    F64(f64),
    /// String field (quotes/backslashes escaped).
    Str(&'a str),
    /// Boolean field.
    Bool(bool),
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[derive(Debug)]
struct EventState {
    file: BufWriter<File>,
    seq: u64,
}

/// Append-only JSONL event log (`<campaign>.telemetry.jsonl`). Each
/// line is `{"seq": N, "t_ms": M, "event": "...", ...fields}`, with
/// `t_ms` milliseconds since the log was created.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    started: Instant,
    state: Mutex<EventState>,
}

impl EventLog {
    /// Creates (truncating) the event log at `path`.
    pub fn create(path: &Path) -> io::Result<EventLog> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = File::create(path)?;
        Ok(EventLog {
            path: path.to_path_buf(),
            started: Instant::now(),
            state: Mutex::new(EventState {
                file: BufWriter::new(file),
                seq: 0,
            }),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line and flushes (events are coordinator-rate,
    /// not packet-rate; durability on kill matters more than syscalls).
    pub fn emit(&self, event: &str, fields: &[(&str, Field)]) {
        let t_ms = self.started.elapsed().as_millis() as u64;
        let mut state = match self.state.lock() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut line = String::with_capacity(96);
        line.push_str(&format!(
            "{{\"seq\": {}, \"t_ms\": {t_ms}, \"event\": \"{event}\"",
            state.seq
        ));
        for (key, value) in fields {
            line.push_str(", \"");
            line.push_str(key);
            line.push_str("\": ");
            match value {
                Field::U64(v) => line.push_str(&v.to_string()),
                Field::F64(v) => line.push_str(&format!("{v:.6}")),
                Field::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
                Field::Str(s) => {
                    line.push('"');
                    escape_into(&mut line, s);
                    line.push('"');
                }
            }
        }
        line.push_str("}\n");
        state.seq += 1;
        let _ = state.file.write_all(line.as_bytes());
        let _ = state.file.flush();
    }
}

// ---------------------------------------------------------------------------
// Live campaign snapshot file
// ---------------------------------------------------------------------------

/// One point's row in a [`LiveSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointProgress {
    /// Stable point-config hash (the store key).
    pub key: u64,
    /// Human-readable point label.
    pub label: String,
    /// Packets realized so far (store-served + simulated).
    pub packets: u64,
    /// The fixed-budget cap for this point.
    pub max_packets: u64,
    /// Current BLER estimate.
    pub bler: f64,
    /// Current Wilson half-width.
    pub half_width: f64,
    /// Whether the point has converged.
    pub converged: bool,
}

/// The live progress file a running campaign rewrites atomically after
/// every scheduling round (`<campaign>.telemetry.json`, shard-suffixed
/// like the store). `seq` is monotonic — the dispatcher reads it as a
/// heartbeat, `campaign-admin top` renders the rest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveSnapshot {
    /// Monotonic write sequence (starts at 1).
    pub seq: u64,
    /// Milliseconds since the campaign run started.
    pub elapsed_ms: u64,
    /// Whether the campaign instance has finished.
    pub done: bool,
    /// Points owned by this instance.
    pub points_total: u64,
    /// Of those, currently converged.
    pub points_converged: u64,
    /// Packets realized (store-served + simulated).
    pub packets_realized: u64,
    /// Packets served from the result store.
    pub packets_from_store: u64,
    /// Packets actually simulated this run.
    pub packets_simulated: u64,
    /// Cumulative simulated packets/sec since run start.
    pub packets_per_sec: f64,
    /// Store chunk fetch hits.
    pub store_chunk_hits: u64,
    /// Store chunk fetch misses.
    pub store_chunk_misses: u64,
    /// Per-point progress rows.
    pub points: Vec<PointProgress>,
}

impl LiveSnapshot {
    /// Store-hit ratio of chunk fetches (0 when nothing was fetched).
    pub fn store_hit_ratio(&self) -> f64 {
        let total = self.store_chunk_hits + self.store_chunk_misses;
        if total == 0 {
            0.0
        } else {
            self.store_chunk_hits as f64 / total as f64
        }
    }

    /// Renders the snapshot JSON (one point per line, flat objects).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seq\": {},\n", self.seq));
        out.push_str(&format!("  \"elapsed_ms\": {},\n", self.elapsed_ms));
        out.push_str(&format!("  \"done\": {},\n", self.done));
        out.push_str(&format!("  \"points_total\": {},\n", self.points_total));
        out.push_str(&format!(
            "  \"points_converged\": {},\n",
            self.points_converged
        ));
        out.push_str(&format!(
            "  \"packets_realized\": {},\n",
            self.packets_realized
        ));
        out.push_str(&format!(
            "  \"packets_from_store\": {},\n",
            self.packets_from_store
        ));
        out.push_str(&format!(
            "  \"packets_simulated\": {},\n",
            self.packets_simulated
        ));
        out.push_str(&format!(
            "  \"packets_per_sec\": {:.2},\n",
            self.packets_per_sec
        ));
        out.push_str(&format!(
            "  \"store_chunk_hits\": {},\n",
            self.store_chunk_hits
        ));
        out.push_str(&format!(
            "  \"store_chunk_misses\": {},\n",
            self.store_chunk_misses
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let mut label = String::new();
            escape_into(&mut label, &p.label);
            out.push_str(&format!(
                "    {{\"key\": \"{:016x}\", \"label\": \"{label}\", \"packets\": {}, \
                 \"max\": {}, \"bler\": {:.6}, \"half_width\": {:.6}, \"converged\": {}}}{}\n",
                p.key,
                p.packets,
                p.max_packets,
                p.bler,
                p.half_width,
                p.converged,
                if i + 1 < self.points.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses what [`render_json`](Self::render_json) wrote. Lenient:
    /// unknown fields are ignored, malformed point lines are skipped.
    pub fn parse(text: &str) -> Option<LiveSnapshot> {
        let mut snap = LiveSnapshot {
            seq: json_u64(text, "seq")?,
            elapsed_ms: json_u64(text, "elapsed_ms").unwrap_or(0),
            done: json_bool(text, "done").unwrap_or(false),
            points_total: json_u64(text, "points_total").unwrap_or(0),
            points_converged: json_u64(text, "points_converged").unwrap_or(0),
            packets_realized: json_u64(text, "packets_realized").unwrap_or(0),
            packets_from_store: json_u64(text, "packets_from_store").unwrap_or(0),
            packets_simulated: json_u64(text, "packets_simulated").unwrap_or(0),
            packets_per_sec: json_f64(text, "packets_per_sec").unwrap_or(0.0),
            store_chunk_hits: json_u64(text, "store_chunk_hits").unwrap_or(0),
            store_chunk_misses: json_u64(text, "store_chunk_misses").unwrap_or(0),
            points: Vec::new(),
        };
        let (_, points) = text.split_once("\"points\": [")?;
        for line in points.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') || !line.ends_with('}') {
                continue;
            }
            let Some(key) = json_hex_key(line) else {
                continue;
            };
            snap.points.push(PointProgress {
                key,
                label: json_str(line, "label").unwrap_or_default(),
                packets: json_u64(line, "packets").unwrap_or(0),
                max_packets: json_u64(line, "max").unwrap_or(0),
                bler: json_f64(line, "bler").unwrap_or(0.0),
                half_width: json_f64(line, "half_width").unwrap_or(0.0),
                converged: json_bool(line, "converged").unwrap_or(false),
            });
        }
        Some(snap)
    }

    /// Writes the snapshot atomically (temp file + rename), so a
    /// concurrent reader never sees a torn snapshot.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, self.render_json())?;
        fs::rename(&tmp, path)
    }

    /// Reads and parses a snapshot file; `None` if absent or torn.
    pub fn read(path: &Path) -> Option<LiveSnapshot> {
        LiveSnapshot::parse(&fs::read_to_string(path).ok()?)
    }
}

/// Reads just the `seq` of a live snapshot file — the dispatcher's
/// cheap heartbeat probe. `None` when the file is absent or malformed
/// (e.g. the leg predates telemetry).
pub fn read_snapshot_seq(path: &Path) -> Option<u64> {
    json_u64(&fs::read_to_string(path).ok()?, "seq")
}

// Flat-JSON field scanners. The leading quote in the needle keeps
// `"packets"` from matching inside `"packets_realized"` etc.; keys we
// write never occur inside label strings (labels can't contain `"`
// unescaped, and the scan looks for the full `"key": ` shape).
fn json_raw<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": ");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_u64(text: &str, key: &str) -> Option<u64> {
    json_raw(text, key)?.parse().ok()
}

fn json_f64(text: &str, key: &str) -> Option<f64> {
    json_raw(text, key)?.parse().ok()
}

fn json_bool(text: &str, key: &str) -> Option<bool> {
    match json_raw(text, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn json_str(text: &str, key: &str) -> Option<String> {
    // String values can contain the `,`/`}` delimiters json_raw stops
    // at (point labels like "6T, Nf=0.10% @ 0 dB" do), so scan to the
    // closing quote directly, un-escaping the two sequences we emit.
    let needle = format!("\"{key}\": \"");
    let start = text.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = text[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            c => out.push(c),
        }
    }
    None
}

fn json_hex_key(text: &str) -> Option<u64> {
    let raw = json_raw(text, "key")?;
    u64::from_str_radix(raw.trim_matches('"'), 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_bucketing_is_exact() {
        let bounds = Histogram::WaveLaneOccupancy.bounds();
        assert_eq!(bucket_index(bounds, 0), 0);
        assert_eq!(bucket_index(bounds, 1), 0);
        assert_eq!(bucket_index(bounds, 2), 1);
        assert_eq!(bucket_index(bounds, 15), 14);
        assert_eq!(bucket_index(bounds, 16), HIST_BUCKETS - 1, "overflow");
        assert_eq!(bucket_index(bounds, u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn exponential_histogram_bucketing_matches_doubling() {
        let bounds = Histogram::ChunkPackets.bounds();
        assert_eq!(bucket_index(bounds, 1), 0);
        assert_eq!(bucket_index(bounds, 2), 1);
        assert_eq!(bucket_index(bounds, 3), 2, "3 <= 4");
        assert_eq!(bucket_index(bounds, 4), 2);
        assert_eq!(bucket_index(bounds, 16384), 14);
        assert_eq!(bucket_index(bounds, 16385), HIST_BUCKETS - 1);
    }

    #[test]
    fn shard_absorb_and_snapshot_aggregate() {
        let a = Shard::new();
        let b = Shard::new();
        a.counter_add(Counter::PacketsSimulated, 5);
        b.counter_add(Counter::PacketsSimulated, 7);
        a.hist_record(Histogram::WaveLaneOccupancy, 16);
        b.hist_record(Histogram::WaveLaneOccupancy, 3);
        a.absorb(&b);
        let mut snap = Snapshot::default();
        a.add_into(&mut snap);
        assert_eq!(snap.counter(Counter::PacketsSimulated), 12);
        let h = snap.hist(Histogram::WaveLaneOccupancy);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 19);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1, "full wave overflows");
        assert_eq!(h.buckets[2], 1, "3 lanes in bucket le=3");
    }

    #[test]
    fn snapshot_merge_adds_everything() {
        let shard = Shard::new();
        shard.counter_add(Counter::StoreChunkHits, 3);
        shard.hist_record(Histogram::ChunkPackets, 8);
        let mut left = Snapshot::default();
        shard.add_into(&mut left);
        let mut right = Snapshot::default();
        shard.add_into(&mut right);
        right.gauges[Gauge::PointsTotal as usize] = 4;
        left.merge(&right);
        assert_eq!(left.counter(Counter::StoreChunkHits), 6);
        assert_eq!(left.gauge(Gauge::PointsTotal), 4);
        assert_eq!(left.hist(Histogram::ChunkPackets).count, 2);
        assert_eq!(left.hist(Histogram::ChunkPackets).sum, 16);
    }

    #[test]
    fn cross_thread_counts_survive_thread_exit() {
        // Counts recorded on a thread must be retired into the global
        // aggregate when the thread exits, not lost with its shard.
        let before = snapshot().counter(Counter::MergesCompleted);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| counter_add(Counter::MergesCompleted, 10));
            }
        });
        let after = snapshot().counter(Counter::MergesCompleted);
        assert_eq!(after - before, 40);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_complete() {
        let shard = Shard::new();
        shard.counter_add(Counter::WavesDecoded, 2);
        shard.hist_record(Histogram::WaveLaneOccupancy, 1);
        shard.hist_record(Histogram::WaveLaneOccupancy, 16);
        let mut snap = Snapshot::default();
        shard.add_into(&mut snap);
        let text = snap.render_prometheus();
        assert!(text.contains("resilience_waves_decoded 2\n"));
        assert!(text.contains("resilience_wave_lane_occupancy_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("resilience_wave_lane_occupancy_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("resilience_wave_lane_occupancy_count 2\n"));
        for c in Counter::ALL {
            assert!(text.contains(c.name()), "{} missing", c.name());
        }
    }

    #[test]
    fn live_snapshot_round_trips() {
        let snap = LiveSnapshot {
            seq: 7,
            elapsed_ms: 1500,
            done: false,
            points_total: 2,
            points_converged: 1,
            packets_realized: 96,
            packets_from_store: 32,
            packets_simulated: 64,
            packets_per_sec: 1234.56,
            store_chunk_hits: 4,
            store_chunk_misses: 2,
            points: vec![
                PointProgress {
                    key: 0xdead_beef,
                    label: "quantized/9dB".into(),
                    packets: 64,
                    max_packets: 100,
                    bler: 0.125,
                    half_width: 0.04,
                    converged: true,
                },
                PointProgress {
                    key: 1,
                    // Real fig6 labels contain commas; the escapes and
                    // closing-brace shape must round-trip too.
                    label: "6T, Nf=0.10% @ 0 dB \\ \"x\", {y}".into(),
                    packets: 32,
                    max_packets: 100,
                    bler: 0.5,
                    half_width: 0.2,
                    converged: false,
                },
            ],
        };
        let parsed = LiveSnapshot::parse(&snap.render_json()).expect("parses");
        assert_eq!(parsed.seq, 7);
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.points[0].key, 0xdead_beef);
        assert_eq!(parsed.points[0].label, "quantized/9dB");
        assert!(parsed.points[0].converged);
        assert_eq!(parsed.points[1].label, "6T, Nf=0.10% @ 0 dB \\ \"x\", {y}");
        assert_eq!(parsed.points[1].packets, 32);
        assert!((parsed.store_hit_ratio() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_seq_probe_reads_written_file() {
        let dir = std::env::temp_dir().join(format!("telemetry-seq-{}", std::process::id()));
        let path = dir.join("probe.telemetry.json");
        let snap = LiveSnapshot {
            seq: 41,
            ..LiveSnapshot::default()
        };
        snap.write_atomic(&path).unwrap();
        assert_eq!(read_snapshot_seq(&path), Some(41));
        assert_eq!(read_snapshot_seq(&dir.join("absent.json")), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn event_log_lines_are_parseable_json_fields() {
        let dir = std::env::temp_dir().join(format!("telemetry-events-{}", std::process::id()));
        let path = dir.join("log.telemetry.jsonl");
        let log = EventLog::create(&path).unwrap();
        log.emit(
            "chunk_scheduled",
            &[
                ("point", Field::Str("quantized/9dB")),
                ("packets", Field::U64(16)),
                ("bler", Field::F64(0.25)),
                ("converged", Field::Bool(false)),
            ],
        );
        log.emit("merge", &[("shards", Field::U64(2))]);
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(json_u64(lines[0], "seq"), Some(0));
        assert_eq!(
            json_str(lines[0], "event").as_deref(),
            Some("chunk_scheduled")
        );
        assert_eq!(json_u64(lines[0], "packets"), Some(16));
        assert_eq!(json_bool(lines[0], "converged"), Some(false));
        assert_eq!(json_u64(lines[1], "seq"), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }
}
