//! Seeded Monte-Carlo runs over storage configurations.
//!
//! [`run_point`] evaluates one `(configuration, storage, SNR)` operating
//! point over many packets, reproducing the paper's worst-case
//! methodology: the fault map is drawn once per run (one die with exactly
//! `N_f` defects) and all packets of the run share that die.
//!
//! These functions are thin serial wrappers over
//! [`crate::engine::SimulationEngine`] and produce statistics that are
//! bit-identical to the engine at any thread count — the per-packet seed
//! tree is the single source of randomness on both paths.

use hspa_phy::harq::{HarqStats, LlrBuffer, PerfectLlrBuffer};
use serde::{Deserialize, Serialize};
use silicon::cell::CellFailureModel;
use silicon::ecc::Secded;
use silicon::fault_map::{FaultKind, FaultMap};
use silicon::ProtectionPlan;

use crate::buffer::{EccLlrBuffer, FaultyLlrBuffer, QuantizedLlrBuffer};
use crate::config::SystemConfig;
use crate::engine::SimulationEngine;
use crate::simulator::LinkSimulator;

/// How many cells of the LLR array are defective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefectSpec {
    /// Exact fraction of the (unprotected) cells, the paper's `N_f` in %.
    Fraction(f64),
    /// Exact number of faulty cells.
    Count(usize),
    /// Cell failures drawn per-cell from `P_cell(Vdd)` for the plan's
    /// cell kinds at this supply voltage.
    AtVdd(f64),
}

/// The LLR-storage backend of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StorageConfig {
    /// Ideal float storage (no quantization, no faults).
    Perfect,
    /// Quantized to the configured word width, fault-free.
    Quantized,
    /// Quantized storage on a faulty array under a protection plan.
    Faulty {
        /// Per-bit cell assignment (e.g. MSB protection).
        plan: ProtectionPlan,
        /// Defect population.
        defects: DefectSpec,
        /// Failure mode of defective cells.
        fault_kind: FaultKind,
    },
    /// SECDED-protected storage over a faulty array (the §6.2 baseline).
    Ecc {
        /// Defect population over the widened codeword array.
        defects: DefectSpec,
        /// Failure mode of defective cells.
        fault_kind: FaultKind,
    },
}

impl StorageConfig {
    /// Shorthand: unprotected 6T array with an exact defect fraction.
    pub fn unprotected(defect_fraction: f64, llr_bits: u8) -> Self {
        StorageConfig::Faulty {
            plan: ProtectionPlan::uniform(llr_bits, silicon::BitCellKind::Sram6T),
            defects: DefectSpec::Fraction(defect_fraction),
            fault_kind: FaultKind::Flip,
        }
    }

    /// Shorthand: `protected` MSBs in 8T cells, defects (as a fraction of
    /// the unprotected cells) only in the 6T bits.
    pub fn msb_protected(protected: u8, defect_fraction: f64, llr_bits: u8) -> Self {
        StorageConfig::Faulty {
            plan: ProtectionPlan::msb_protected(llr_bits, protected),
            defects: DefectSpec::Fraction(defect_fraction),
            fault_kind: FaultKind::Flip,
        }
    }

    /// Short human-readable label for tables.
    pub fn label(&self) -> String {
        match self {
            StorageConfig::Perfect => "ideal".into(),
            StorageConfig::Quantized => "quantized".into(),
            StorageConfig::Faulty { plan, defects, .. } => {
                let prot = plan.protected_bits();
                let d = match defects {
                    DefectSpec::Fraction(f) => format!("{:.2}%", f * 100.0),
                    DefectSpec::Count(n) => format!("{n} cells"),
                    DefectSpec::AtVdd(v) => format!("Vdd={v:.2}V"),
                };
                if prot == 0 {
                    format!("6T, Nf={d}")
                } else {
                    format!("hybrid {prot}MSB/8T, Nf={d}")
                }
            }
            StorageConfig::Ecc { defects, .. } => {
                let d = match defects {
                    DefectSpec::Fraction(f) => format!("{:.2}%", f * 100.0),
                    DefectSpec::Count(n) => format!("{n} cells"),
                    DefectSpec::AtVdd(v) => format!("Vdd={v:.2}V"),
                };
                format!("SECDED, Nf={d}")
            }
        }
    }
}

/// Resolves a defect spec to an exact fault count for `cells` candidate
/// cells.
fn defect_count(defects: DefectSpec, cells: u64) -> usize {
    match defects {
        DefectSpec::Fraction(f) => {
            assert!((0.0..=1.0).contains(&f), "defect fraction must be in [0,1]");
            (cells as f64 * f).round() as usize
        }
        DefectSpec::Count(n) => n,
        DefectSpec::AtVdd(_) => unreachable!("AtVdd handled by the plan path"),
    }
}

/// Builds the fault-injected buffer for a storage configuration.
///
/// `seed` controls the fault-map draw (one die per run).
pub fn build_buffer(
    cfg: &SystemConfig,
    storage: &StorageConfig,
    seed: u64,
) -> Box<dyn LlrBuffer + Send> {
    let words = cfg.coded_len() as u32;
    let quantizer = cfg.quantizer();
    match storage {
        StorageConfig::Perfect => Box::new(PerfectLlrBuffer::new(cfg.coded_len())),
        StorageConfig::Quantized => Box::new(QuantizedLlrBuffer::new(cfg.coded_len(), quantizer)),
        StorageConfig::Faulty {
            plan,
            defects,
            fault_kind,
        } => {
            assert_eq!(plan.bits(), cfg.llr_bits, "plan width must match LLR width");
            let map = match defects {
                DefectSpec::AtVdd(vdd) => plan.fault_map_at_vdd(
                    words,
                    &CellFailureModel::dac12(),
                    *vdd,
                    *fault_kind,
                    seed,
                ),
                spec => {
                    let unprot = plan
                        .unprotected_range()
                        .expect("defect fractions need an MSB-protection plan");
                    let unprot_cells = words as u64 * unprot.len() as u64;
                    let n = defect_count(*spec, unprot_cells);
                    if unprot.is_empty() || n == 0 {
                        FaultMap::defect_free(words, plan.bits())
                    } else {
                        FaultMap::random_in_bits(words, plan.bits(), unprot, n, *fault_kind, seed)
                    }
                }
            };
            Box::new(FaultyLlrBuffer::new(map, quantizer))
        }
        StorageConfig::Ecc {
            defects,
            fault_kind,
        } => {
            let code = Secded::new(cfg.llr_bits);
            let width = code.codeword_bits();
            let map = match defects {
                DefectSpec::AtVdd(vdd) => {
                    let plan = ProtectionPlan::uniform(width, silicon::BitCellKind::Sram6T);
                    plan.fault_map_at_vdd(
                        words,
                        &CellFailureModel::dac12(),
                        *vdd,
                        *fault_kind,
                        seed,
                    )
                }
                spec => {
                    let cells = words as u64 * width as u64;
                    let n = defect_count(*spec, cells);
                    if n == 0 {
                        FaultMap::defect_free(words, width)
                    } else {
                        FaultMap::random_exact(words, width, n, *fault_kind, seed)
                    }
                }
            };
            Box::new(EccLlrBuffer::new(map, quantizer))
        }
    }
}

/// Runs `n_packets` transport blocks at one `(storage, SNR)` point.
///
/// Fully deterministic in `seed`: the fault map uses one derived stream
/// ([`STREAM_FAULT_MAP`]) and every packet its own derived stream, so the
/// result equals the parallel engine's for the same seed.
pub fn run_point(
    cfg: &SystemConfig,
    storage: &StorageConfig,
    snr_db: f64,
    n_packets: usize,
    seed: u64,
) -> HarqStats {
    let sim = LinkSimulator::new(*cfg);
    run_point_with(&sim, storage, snr_db, n_packets, seed)
}

/// Like [`run_point`] but reuses an existing simulator (cheaper inside
/// sweeps: the turbo interleaver is rebuilt otherwise).
pub fn run_point_with(
    sim: &LinkSimulator,
    storage: &StorageConfig,
    snr_db: f64,
    n_packets: usize,
    seed: u64,
) -> HarqStats {
    SimulationEngine::serial().run_point(sim, storage, snr_db, n_packets, seed)
}

/// Runs a full SNR sweep for one storage configuration (serially; use
/// [`SimulationEngine::run_sweep`] directly for the parallel version).
pub fn run_sweep(
    sim: &LinkSimulator,
    storage: &StorageConfig,
    snrs_db: &[f64],
    n_packets: usize,
    seed: u64,
) -> Vec<HarqStats> {
    SimulationEngine::serial().run_sweep(sim, storage, snrs_db, n_packets, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_quantized_agree_at_high_snr() {
        let cfg = SystemConfig::fast_test();
        let a = run_point(&cfg, &StorageConfig::Perfect, 25.0, 10, 9);
        let b = run_point(&cfg, &StorageConfig::Quantized, 25.0, 10, 9);
        assert_eq!(a.delivered, b.delivered);
        assert!((a.normalized_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = SystemConfig::fast_test();
        let s = StorageConfig::unprotected(0.05, cfg.llr_bits);
        let a = run_point(&cfg, &s, 10.0, 8, 3);
        let b = run_point(&cfg, &s, 10.0, 8, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn moderate_defects_tolerated_high_defects_hurt() {
        let cfg = SystemConfig::fast_test();
        let snr = 14.0;
        let n = 12;
        let clean = run_point(&cfg, &StorageConfig::Quantized, snr, n, 21);
        let light = run_point(
            &cfg,
            &StorageConfig::unprotected(0.001, cfg.llr_bits),
            snr,
            n,
            21,
        );
        let heavy = run_point(
            &cfg,
            &StorageConfig::unprotected(0.25, cfg.llr_bits),
            snr,
            n,
            21,
        );
        assert_eq!(
            clean.delivered, light.delivered,
            "0.1% defects must be transparent"
        );
        assert!(
            heavy.normalized_throughput() < clean.normalized_throughput(),
            "25% defects must degrade throughput: {} vs {}",
            heavy.normalized_throughput(),
            clean.normalized_throughput()
        );
    }

    #[test]
    fn msb_protection_recovers_throughput() {
        let cfg = SystemConfig::fast_test();
        let snr = 12.0;
        let n = 12;
        let frac = 0.15;
        let unprot = run_point(
            &cfg,
            &StorageConfig::unprotected(frac, cfg.llr_bits),
            snr,
            n,
            33,
        );
        let prot = run_point(
            &cfg,
            &StorageConfig::msb_protected(4, frac, cfg.llr_bits),
            snr,
            n,
            33,
        );
        assert!(
            prot.normalized_throughput() >= unprot.normalized_throughput(),
            "protection must not hurt: {} vs {}",
            prot.normalized_throughput(),
            unprot.normalized_throughput()
        );
    }

    #[test]
    fn ecc_buffer_handles_sparse_defects() {
        let cfg = SystemConfig::fast_test();
        let storage = StorageConfig::Ecc {
            defects: DefectSpec::Fraction(0.001),
            fault_kind: FaultKind::Flip,
        };
        let stats = run_point(&cfg, &storage, 25.0, 6, 5);
        assert_eq!(
            stats.delivered, stats.packets,
            "sparse faults fully corrected"
        );
    }

    #[test]
    fn vdd_spec_builds() {
        let cfg = SystemConfig::fast_test();
        let storage = StorageConfig::Faulty {
            plan: ProtectionPlan::msb_protected(10, 4),
            defects: DefectSpec::AtVdd(0.65),
            fault_kind: FaultKind::Flip,
        };
        let stats = run_point(&cfg, &storage, 25.0, 4, 6);
        assert_eq!(stats.packets, 4);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn buffers_match_configured_geometry(frac in 0.0f64..0.3, prot in 0u8..=10,
                                                 seed in 0u64..100) {
                let cfg = SystemConfig::fast_test();
                let storage = StorageConfig::msb_protected(prot, frac, cfg.llr_bits);
                let buf = build_buffer(&cfg, &storage, seed);
                prop_assert_eq!(buf.capacity(), cfg.coded_len());
            }

            #[test]
            fn fault_maps_are_seed_deterministic(frac in 0.01f64..0.2, seed in 0u64..50) {
                let cfg = SystemConfig::fast_test();
                let storage = StorageConfig::unprotected(frac, cfg.llr_bits);
                let mut a = build_buffer(&cfg, &storage, seed);
                let mut b = build_buffer(&cfg, &storage, seed);
                let v = vec![7.0; cfg.coded_len()];
                a.store(&v);
                b.store(&v);
                prop_assert_eq!(a.load(), b.load());
            }

            #[test]
            fn labels_never_empty(frac in 0.0f64..0.5, prot in 0u8..=10) {
                let s1 = StorageConfig::unprotected(frac, 10);
                let s2 = StorageConfig::msb_protected(prot, frac, 10);
                prop_assert!(!s1.label().is_empty());
                prop_assert!(!s2.label().is_empty());
            }
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(StorageConfig::Perfect.label(), "ideal");
        assert!(StorageConfig::unprotected(0.1, 10)
            .label()
            .contains("10.00%"));
        assert!(StorageConfig::msb_protected(4, 0.1, 10)
            .label()
            .contains("4MSB"));
    }
}
