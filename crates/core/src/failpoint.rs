//! Deterministic fault injection for chaos-testing the campaign stack.
//!
//! A *failpoint* is a named site compiled into the dispatcher, the
//! launchers and both store backends where a fault can be injected on
//! demand: a launch that fails with an I/O error, a leg that crashes
//! after its k-th stored chunk, a leg that hangs, a heartbeat artifact
//! that goes stale, an append torn mid-record, an index sidecar written
//! corrupt. Whether a given site fires is a **pure function** of a
//! chaos seed, the site, a context string (usually the shard spec or
//! file name) and how many times the site has been checked — so every
//! chaos run is replayable from its seed alone.
//!
//! Design constraints, in order:
//!
//! * **Zero overhead unarmed.** Every site guards on [`armed`] — a
//!   single relaxed atomic load — before building its context string.
//!   Production binaries never arm, so the hot paths (store appends,
//!   the decode loop) pay one predictable branch.
//! * **Excluded from campaign identity.** Arming is process-global
//!   state like `--telemetry`, deliberately *not* part of
//!   `CampaignSettings`: settings render into manifests, and a chaos
//!   run must converge to byte-identical results once its faults are
//!   survived.
//! * **Terminating.** No site fires when the current *attempt* is
//!   greater than one. The dispatcher forwards the attempt number to
//!   relaunched legs (`RESILIENCE_CHAOS_ATTEMPT`), so any schedule that
//!   leaves at least one retry per shard ends with a clean pass — the
//!   chaos proof in CI relies on this.
//!
//! Legs are separate processes; they inherit the schedule through the
//! `RESILIENCE_CHAOS_SEED` / `RESILIENCE_CHAOS_ATTEMPT` environment
//! variables, read once by [`arm_from_env`] during argument parsing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable carrying the chaos seed to leg processes.
pub const SEED_ENV: &str = "RESILIENCE_CHAOS_SEED";
/// Environment variable carrying the relaunch attempt number (1-based).
pub const ATTEMPT_ENV: &str = "RESILIENCE_CHAOS_ATTEMPT";

/// A named fault-injection site. Each site lives at one boundary of the
/// campaign stack and models one concrete failure the dispatcher must
/// survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// `Launcher::launch` fails with an I/O error before the leg runs.
    LaunchIo,
    /// The leg process exits abruptly after its k-th stored chunk.
    LegCrash,
    /// The leg stops making progress without exiting (stall-kill bait).
    LegHang,
    /// The leg's live-snapshot heartbeat is never written, so artifact
    /// signatures are the dispatcher's only liveness signal.
    HeartbeatStale,
    /// A store append writes only a prefix of the record, then the
    /// process dies — the torn tail both backends must tolerate.
    AppendTorn,
    /// The segment store's index sidecar is written as garbage, forcing
    /// the next open to fall back to a full scan.
    IndexCorrupt,
}

impl Site {
    /// Stable name used in logs and test assertions.
    pub fn name(self) -> &'static str {
        match self {
            Site::LaunchIo => "launch-io",
            Site::LegCrash => "leg-crash",
            Site::LegHang => "leg-hang",
            Site::HeartbeatStale => "heartbeat-stale",
            Site::AppendTorn => "append-torn",
            Site::IndexCorrupt => "index-corrupt",
        }
    }

    /// Per-site salt mixed into the decision hash so sites draw
    /// independent streams from one seed.
    fn salt(self) -> u64 {
        match self {
            Site::LaunchIo => 0x9e37_79b9_7f4a_7c15,
            Site::LegCrash => 0xbf58_476d_1ce4_e5b9,
            Site::LegHang => 0x94d0_49bb_1331_11eb,
            Site::HeartbeatStale => 0xd6e8_feb8_6659_fd93,
            Site::AppendTorn => 0xa0761d6478bd642f,
            Site::IndexCorrupt => 0xe703_7ed1_a0b4_28db,
        }
    }
}

/// The armed schedule: seed, attempt, and how many times each
/// (site, context) pair has been checked so far.
struct Plan {
    seed: u64,
    attempt: u32,
    // determinism: unordered-ok(per-(site, ctx) counters via keyed entry access; never iterated)
    hits: HashMap<(Site, String), u64>,
}

/// Fast-path switch: a single relaxed load decides "no chaos" for every
/// unarmed process.
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

/// Arms fault injection with `seed` at attempt 1 (or the attempt from
/// [`ATTEMPT_ENV`] when the dispatcher relaunched this process).
pub fn arm(seed: u64) {
    let attempt = std::env::var(ATTEMPT_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    arm_with_attempt(seed, attempt);
}

/// Arms fault injection with an explicit attempt number. Attempt 1 is
/// the chaotic pass; higher attempts never fire (see module docs).
pub fn arm_with_attempt(seed: u64, attempt: u32) {
    let mut plan = PLAN.lock().unwrap();
    *plan = Some(Plan {
        seed,
        attempt: attempt.max(1),
        // determinism: unordered-ok(keyed entry access only; never iterated)
        hits: HashMap::new(),
    });
    ARMED.store(true, Ordering::Release);
}

/// Arms from the process environment, returning whether a schedule was
/// found. Called once during argument parsing by every figure binary so
/// dispatched legs inherit the dispatcher's chaos schedule.
pub fn arm_from_env() -> bool {
    let Some(seed) = std::env::var(SEED_ENV).ok().and_then(|v| v.parse().ok()) else {
        return false;
    };
    arm(seed);
    true
}

/// Disarms fault injection and forgets the schedule.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *PLAN.lock().unwrap() = None;
}

/// Whether any schedule is armed. One relaxed atomic load — sites guard
/// on this before doing any work (including context-string formatting).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Checks the site against the armed schedule; counts the check and
/// returns whether the fault fires. Always `false` when unarmed.
pub fn should_fire(site: Site, ctx: &str) -> bool {
    if !armed() {
        return false;
    }
    let mut guard = PLAN.lock().unwrap();
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    let check_no = plan
        .hits
        .entry((site, ctx.to_string()))
        .and_modify(|n| *n += 1)
        .or_insert(1);
    would_fire(plan.seed, plan.attempt, site, ctx, *check_no)
}

/// Like [`should_fire`] but with an explicit attempt number, for the
/// dispatcher side where one armed process launches many legs each at
/// its own attempt (the plan's global attempt only describes legs).
pub fn should_fire_attempt(site: Site, ctx: &str, attempt: u32) -> bool {
    if !armed() {
        return false;
    }
    let mut guard = PLAN.lock().unwrap();
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    let check_no = plan
        .hits
        .entry((site, ctx.to_string()))
        .and_modify(|n| *n += 1)
        .or_insert(1);
    would_fire(plan.seed, attempt, site, ctx, *check_no)
}

/// The pure decision function: does check number `check_no` (1-based)
/// of `site` under `ctx` fire for this seed and attempt? Public so
/// tests can reason about schedules without arming the process-global
/// state (arming in a multi-threaded test binary would let crash sites
/// kill unrelated tests).
pub fn would_fire(seed: u64, attempt: u32, site: Site, ctx: &str, check_no: u64) -> bool {
    // Retries run clean: this is what makes every chaos schedule
    // terminate once each shard gets one more attempt.
    if attempt > 1 {
        return false;
    }
    let h = splitmix64(seed ^ site.salt() ^ fnv1a64(ctx.as_bytes()));
    let roll = h % 100;
    match site {
        // One-shot sites: decided on their first check only.
        Site::LaunchIo => check_no == 1 && roll < 25,
        Site::IndexCorrupt => check_no == 1 && roll < 30,
        // k-th-hit sites: a selected context fires on exactly one
        // deterministic check (the crash/tear lands mid-run, not at a
        // fixed place).
        Site::LegCrash => roll < 50 && check_no == 1 + ((h >> 8) % 3),
        Site::AppendTorn => roll < 30 && check_no == 1 + ((h >> 8) % 4),
        // Sticky sites: once selected, every check fires (a hung leg
        // stays hung, a stale heartbeat stays stale).
        Site::LegHang => roll < 20,
        Site::HeartbeatStale => roll < 25,
    }
}

/// SplitMix64 finalizer — the standard 64-bit avalanche.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the context bytes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITES: [Site; 6] = [
        Site::LaunchIo,
        Site::LegCrash,
        Site::LegHang,
        Site::HeartbeatStale,
        Site::AppendTorn,
        Site::IndexCorrupt,
    ];

    #[test]
    fn decisions_are_deterministic_in_seed_site_ctx_and_check() {
        for seed in [0u64, 7, 0xdead_beef] {
            for site in SITES {
                for ctx in ["0/2", "1/2", "fig6.jsonl"] {
                    for check in 1..6 {
                        assert_eq!(
                            would_fire(seed, 1, site, ctx, check),
                            would_fire(seed, 1, site, ctx, check),
                            "replay must agree: {seed} {site:?} {ctx} {check}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn attempt_two_never_fires() {
        for seed in 0..200u64 {
            for site in SITES {
                for check in 1..8 {
                    assert!(
                        !would_fire(seed, 2, site, "0/2", check),
                        "attempt 2 fired: seed {seed} {site:?} check {check}"
                    );
                    assert!(!would_fire(seed, 3, site, "0/2", check));
                }
            }
        }
    }

    #[test]
    fn every_site_fires_for_some_seed_and_rests_for_another() {
        for site in SITES {
            let fires = |seed: u64| (1..8).any(|c| would_fire(seed, 1, site, "0/2", c));
            assert!((0..500).any(fires), "{site:?} never fires");
            assert!((0..500).any(|s| !fires(s)), "{site:?} always fires");
        }
    }

    #[test]
    fn kth_hit_sites_fire_exactly_once() {
        for site in [Site::LegCrash, Site::AppendTorn] {
            for seed in 0..300u64 {
                let fired: Vec<u64> = (1..50)
                    .filter(|&c| would_fire(seed, 1, site, "1/3", c))
                    .collect();
                assert!(fired.len() <= 1, "{site:?} seed {seed} fired at {fired:?}");
            }
        }
    }

    #[test]
    fn sticky_sites_fire_on_every_check_once_selected() {
        for site in [Site::LegHang, Site::HeartbeatStale] {
            let seed = (0..2000u64)
                .find(|&s| would_fire(s, 1, site, "x", 1))
                .expect("some seed selects the site");
            for check in 1..10 {
                assert!(would_fire(seed, 1, site, "x", check));
            }
        }
    }

    #[test]
    fn contexts_draw_independent_streams() {
        // Two shards under the same seed must not share their fate:
        // some seed crashes shard 0 but not shard 1.
        let crashes =
            |seed: u64, ctx: &str| (1..8).any(|c| would_fire(seed, 1, Site::LegCrash, ctx, c));
        assert!(
            (0..500).any(|s| crashes(s, "0/2") != crashes(s, "1/2")),
            "contexts are correlated"
        );
    }

    #[test]
    fn should_fire_counts_checks_per_context() {
        // Arm/disarm in one test only (tests share the process), using
        // an explicit attempt so the environment cannot interfere.
        let seed = (0..2000u64)
            .find(|&s| {
                let k = 1 + (splitmix64(s ^ Site::LegCrash.salt() ^ fnv1a64(b"ctx")) >> 8) % 3;
                would_fire(s, 1, Site::LegCrash, "ctx", k)
            })
            .expect("some seed crashes ctx");
        arm_with_attempt(seed, 1);
        let fired: Vec<usize> = (0..6)
            .filter(|_| should_fire(Site::LegCrash, "ctx"))
            .collect();
        assert_eq!(fired.len(), 1, "armed k-th-hit site fires exactly once");
        // A different context under the global armed plan keeps its own
        // counter (no cross-talk with "ctx"'s consumed checks).
        assert!(!should_fire_attempt(Site::LegCrash, "other", 2));
        disarm();
        assert!(!should_fire(Site::LegCrash, "ctx"), "disarmed is silent");
        assert!(!armed());
    }
}
