//! Plain-text tables and series for experiment output.
//!
//! Every figure regenerator prints its data through these helpers so the
//! bench binaries produce uniform, diff-able output.

use std::fmt::Write as _;

/// A labelled (x, y) series — one curve of a paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `"Nf=1%"`).
    pub label: String,
    /// X values (e.g. SNR in dB).
    pub x: Vec<f64>,
    /// Y values (e.g. normalized throughput).
    pub y: Vec<f64>,
    /// Optional per-point confidence interval `(low, high)` around `y`
    /// (e.g. the achieved Wilson interval of an adaptive campaign);
    /// rendered as a `±half-width` annotation.
    pub ci: Option<Vec<(f64, f64)>>,
}

impl Series {
    /// Creates a series.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series length mismatch");
        Self {
            label: label.into(),
            x,
            y,
            ci: None,
        }
    }

    /// Attaches per-point confidence intervals (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `ci` and `y` lengths differ.
    pub fn with_ci(mut self, ci: Vec<(f64, f64)>) -> Self {
        assert_eq!(ci.len(), self.y.len(), "one interval per point");
        self.ci = Some(ci);
        self
    }

    /// Linear interpolation of y at `x0`; clamps outside the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty series.
    pub fn interpolate(&self, x0: f64) -> f64 {
        assert!(!self.x.is_empty(), "cannot interpolate an empty series");
        if x0 <= self.x[0] {
            return self.y[0];
        }
        for w in 0..self.x.len() - 1 {
            let (xa, xb) = (self.x[w], self.x[w + 1]);
            if x0 <= xb {
                let t = (x0 - xa) / (xb - xa);
                return self.y[w] + t * (self.y[w + 1] - self.y[w]);
            }
        }
        *self.y.last().expect("non-empty")
    }

    /// First x at which the series reaches `level`, by linear
    /// interpolation; `None` if it never does (or the series is empty).
    ///
    /// Handles non-monotonic series (a curve that starts at/above the
    /// level reports its first point, not some later re-crossing after a
    /// dip) and exact hits at the knots, including the final endpoint
    /// (`y.last() == level` reports the last x).
    pub fn crossing(&self, level: f64) -> Option<f64> {
        if self.y.first().is_some_and(|&y0| y0 >= level) {
            return Some(self.x[0]);
        }
        for w in 0..self.x.len().saturating_sub(1) {
            let (ya, yb) = (self.y[w], self.y[w + 1]);
            if ya < level && yb >= level {
                let t = (level - ya) / (yb - ya);
                return Some(self.x[w] + t * (self.x[w + 1] - self.x[w]));
            }
        }
        None
    }
}

/// Renders a set of series sharing an x axis as one aligned table.
///
/// Series carrying confidence intervals ([`Series::with_ci`]) render
/// each point as `value±half-width` — the per-point achieved-precision
/// annotation of adaptive campaigns.
///
/// # Panics
///
/// Panics if the series have differing x axes.
pub fn render_series_table(x_label: &str, series: &[Series]) -> String {
    assert!(!series.is_empty(), "no series to render");
    for s in series {
        assert_eq!(s.x, series[0].x, "series must share the x axis");
    }
    let mut headers = vec![x_label.to_string()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let mut rows = Vec::new();
    for (i, &x) in series[0].x.iter().enumerate() {
        let mut row = vec![format!("{x:.2}")];
        row.extend(series.iter().map(|s| match &s.ci {
            Some(ci) => format!("{:.4}±{:.4}", s.y[i], (ci[i].1 - ci[i].0) / 2.0),
            None => format!("{:.4}", s.y[i]),
        }));
        rows.push(row);
    }
    render_table(&headers, &rows)
}

/// Renders an aligned ASCII table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for r in rows {
        assert_eq!(r.len(), cols, "row width mismatch");
    }
    // Widths in chars, not bytes — `format!` pads by char count, and
    // CI annotations contain a multi-byte `±`.
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    write_row(&mut out, headers);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation() {
        let s = Series::new("t", vec![0.0, 10.0], vec![0.0, 1.0]);
        assert!((s.interpolate(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.interpolate(-5.0), 0.0);
        assert_eq!(s.interpolate(20.0), 1.0);
    }

    #[test]
    fn crossing_detection() {
        let s = Series::new("t", vec![0.0, 10.0, 20.0], vec![0.1, 0.4, 0.9]);
        let c = s.crossing(0.53).unwrap();
        assert!(c > 10.0 && c < 20.0);
        assert_eq!(s.crossing(0.95), None);
        let hi = Series::new("t", vec![0.0, 1.0], vec![0.9, 0.95]);
        assert_eq!(hi.crossing(0.5), Some(0.0));
    }

    #[test]
    fn crossing_non_monotonic_reports_first_reach() {
        // Starts above the level, dips, crosses again: the first x at
        // the level is the first point, not the later re-crossing.
        let s = Series::new("t", vec![0.0, 10.0, 20.0, 30.0], vec![0.6, 0.4, 0.9, 0.2]);
        assert_eq!(s.crossing(0.5), Some(0.0));
        // Starts below, dips further, then crosses: interpolated in the
        // rising segment.
        let s = Series::new("t", vec![0.0, 10.0, 20.0], vec![0.3, 0.1, 0.9]);
        let c = s.crossing(0.5).unwrap();
        assert!(c > 10.0 && c < 20.0, "got {c}");
        // A level only reached during the dip's recovery.
        let s = Series::new("t", vec![0.0, 10.0, 20.0], vec![0.4, 0.2, 0.45]);
        assert_eq!(s.crossing(0.5), None);
    }

    #[test]
    fn crossing_exact_endpoint_hits() {
        // Exact hit on the last point.
        let s = Series::new("t", vec![0.0, 10.0, 20.0], vec![0.1, 0.3, 0.5]);
        assert_eq!(s.crossing(0.5), Some(20.0));
        // Exact hit on the first point.
        let s = Series::new("t", vec![5.0, 10.0], vec![0.5, 0.9]);
        assert_eq!(s.crossing(0.5), Some(5.0));
        // Exact hit on an interior knot.
        let s = Series::new("t", vec![0.0, 10.0, 20.0], vec![0.1, 0.5, 0.4]);
        assert_eq!(s.crossing(0.5), Some(10.0));
        // Empty series.
        assert_eq!(Series::new("t", vec![], vec![]).crossing(0.5), None);
    }

    #[test]
    fn ci_annotations_render() {
        let plain = Series::new("plain", vec![1.0, 2.0], vec![0.5, 0.6]);
        let ci = Series::new("ci", vec![1.0, 2.0], vec![0.5, 0.6])
            .with_ci(vec![(0.4, 0.6), (0.55, 0.65)]);
        let t = render_series_table("x", &[plain, ci]);
        // The plain column stays clean; the ci column is annotated.
        assert!(t.contains("0.5000  0.5000±0.1000"), "{t}");
        assert!(t.contains("0.6000  0.6000±0.0500"), "{t}");
    }

    #[test]
    #[should_panic(expected = "one interval per point")]
    fn ci_length_mismatch_rejected() {
        let _ = Series::new("t", vec![1.0], vec![0.5]).with_ci(vec![]);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["snr".into(), "thr".into()],
            &[
                vec!["1".into(), "0.5".into()],
                vec!["10".into(), "0.9".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("snr"));
        assert!(lines[2].ends_with("0.5"));
    }

    #[test]
    fn series_table() {
        let a = Series::new("a", vec![1.0, 2.0], vec![0.1, 0.2]);
        let b = Series::new("b", vec![1.0, 2.0], vec![0.3, 0.4]);
        let t = render_series_table("x", &[a, b]);
        assert!(t.contains("0.3000"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn interpolation_within_bounds(ys in proptest::collection::vec(0.0f64..1.0, 2..10),
                                           t in 0.0f64..1.0) {
                let n = ys.len();
                let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let s = Series::new("p", xs, ys.clone());
                let x0 = t * (n - 1) as f64;
                let y = s.interpolate(x0);
                let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12);
            }

            #[test]
            fn interpolation_exact_at_knots(ys in proptest::collection::vec(-5.0f64..5.0, 2..8),
                                            idx in 0usize..8) {
                let n = ys.len();
                let idx = idx % n;
                let xs: Vec<f64> = (0..n).map(|i| i as f64 * 2.5).collect();
                let s = Series::new("p", xs.clone(), ys.clone());
                prop_assert!((s.interpolate(xs[idx]) - ys[idx]).abs() < 1e-12);
            }

            #[test]
            fn crossing_is_consistent(ys in proptest::collection::vec(0.0f64..1.0, 2..10),
                                      level in 0.05f64..0.95) {
                let n = ys.len();
                let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let s = Series::new("p", xs, ys);
                if let Some(x) = s.crossing(level) {
                    // At the reported crossing the interpolated value
                    // matches the level (or the series starts above it).
                    let y = s.interpolate(x);
                    prop_assert!(y >= level - 1e-9 || x == 0.0);
                }
            }

            #[test]
            fn table_row_count(n in 1usize..20) {
                let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let s = Series::new("p", xs.clone(), xs.clone());
                let t = render_series_table("x", &[s]);
                prop_assert_eq!(t.lines().count(), n + 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "share the x axis")]
    fn mismatched_axes_rejected() {
        let a = Series::new("a", vec![1.0], vec![0.1]);
        let b = Series::new("b", vec![2.0], vec![0.3]);
        let _ = render_series_table("x", &[a, b]);
    }
}
