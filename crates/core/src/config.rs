//! Link-level system configuration.
//!
//! [`SystemConfig`] fixes everything about the simulated HSPA+ link except
//! the SNR and the LLR-storage backend, which the experiments sweep.

use dsp::{LlrFormat, LlrQuantizer};
use hspa_phy::harq::HarqCombining;
use hspa_phy::turbo::AccuracyTier;
use hspa_phy::Modulation;
use serde::{Deserialize, Serialize};

/// Which channel model the link runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Frequency-flat AWGN (fast; used in unit tests).
    Awgn,
    /// Rayleigh block-fading ITU Pedestrian A at the SF16 symbol rate.
    #[default]
    PedestrianA,
    /// Rayleigh block-fading ITU Vehicular A at chip spacing — the
    /// dispersive, equalizer-stressing configuration.
    VehicularA,
    /// Time-correlated (Jakes) flat fading: successive retransmissions
    /// see correlated fades (slow terminal), weakening HARQ diversity.
    CorrelatedSlowFading,
}

/// Complete link configuration.
///
/// The paper's setup (Section 5): 64QAM, 10-bit LLRs, MMSE equalizer,
/// maximum of three retransmissions (four transmissions total), fully
/// standard-compliant chain. [`SystemConfig::paper_64qam`] reproduces it
/// at a scaled block length whose LLR array matches the paper's
/// "10 % defects ≈ 2000 cells" quote.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Information payload bits per transport block (before CRC).
    pub payload_bits: usize,
    /// Modulation of every transmission.
    pub modulation: Modulation,
    /// Coded bits per transmission (rate-matching target). Must be a
    /// multiple of the modulation's bits/symbol.
    pub channel_bits_per_tx: usize,
    /// Maximum transmissions per packet (1 initial + retransmissions).
    pub max_transmissions: usize,
    /// Turbo decoder iterations.
    pub decoder_iterations: usize,
    /// LLR word width in bits (the Fig. 9 sweep variable).
    pub llr_bits: u8,
    /// LLR clip level.
    pub llr_clip: f64,
    /// LLR storage format.
    pub llr_format: LlrFormat,
    /// HARQ combining strategy.
    pub combining: HarqCombining,
    /// Channel model.
    pub channel: ChannelKind,
    /// MMSE equalizer taps (ignored for AWGN).
    pub equalizer_taps: usize,
    /// Turbo-decoder accuracy tier. `Exact` (the default) is the
    /// bit-exact `f64` reference; `EarlyStop` adds the CRC-gated
    /// iteration stop; `Fast32` runs single-precision trellis metrics.
    /// Part of the campaign point fingerprint — stores never mix tiers.
    pub accuracy_tier: AccuracyTier,
}

impl SystemConfig {
    /// The paper's 64QAM evaluation mode at a scaled block length.
    ///
    /// Transport block: 600 payload + 24 CRC = 624 turbo-input bits;
    /// codeword 1884 bits stored as LLRs → an 18 840-cell array at 10-bit
    /// quantization, so a 10 % defect rate is ~1 900 faulty cells,
    /// matching the paper's "2000 defective cells" anchor. Each
    /// transmission carries 1 152 channel bits (192 64QAM symbols), an
    /// initial code rate of 0.54 that HARQ IR lowers on retransmission.
    pub fn paper_64qam() -> Self {
        Self {
            payload_bits: 600,
            modulation: Modulation::Qam64,
            channel_bits_per_tx: 1152,
            max_transmissions: 4,
            decoder_iterations: 6,
            llr_bits: 10,
            llr_clip: 32.0,
            llr_format: LlrFormat::TwosComplement,
            combining: HarqCombining::IncrementalRedundancy,
            channel: ChannelKind::PedestrianA,
            equalizer_taps: 15,
            accuracy_tier: AccuracyTier::Exact,
        }
    }

    /// A small, fast configuration for unit/integration tests.
    pub fn fast_test() -> Self {
        Self {
            payload_bits: 120,
            modulation: Modulation::Qam16,
            channel_bits_per_tx: 288,
            max_transmissions: 4,
            decoder_iterations: 4,
            llr_bits: 10,
            llr_clip: 32.0,
            llr_format: LlrFormat::TwosComplement,
            combining: HarqCombining::IncrementalRedundancy,
            channel: ChannelKind::Awgn,
            equalizer_taps: 7,
            accuracy_tier: AccuracyTier::Exact,
        }
    }

    /// The same configuration with a different decoder accuracy tier.
    pub fn with_tier(mut self, tier: AccuracyTier) -> Self {
        self.accuracy_tier = tier;
        self
    }

    /// Turbo-encoder input length (payload + 24-bit CRC).
    pub fn turbo_k(&self) -> usize {
        self.payload_bits + 24
    }

    /// Mother codeword length `3K + 12` — also the LLR-buffer word count.
    pub fn coded_len(&self) -> usize {
        3 * self.turbo_k() + 12
    }

    /// Total LLR-storage cells (`coded_len × llr_bits`), the paper's `M`.
    pub fn storage_cells(&self) -> u64 {
        self.coded_len() as u64 * self.llr_bits as u64
    }

    /// 64QAM symbols per transmission.
    pub fn symbols_per_tx(&self) -> usize {
        self.channel_bits_per_tx / self.modulation.bits_per_symbol()
    }

    /// Initial-transmission code rate.
    pub fn initial_rate(&self) -> f64 {
        self.turbo_k() as f64 / self.channel_bits_per_tx as f64
    }

    /// The LLR quantizer implied by the width/clip/format fields.
    pub fn quantizer(&self) -> LlrQuantizer {
        LlrQuantizer::new(self.llr_bits, self.llr_clip, self.llr_format)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration (non-multiple channel
    /// bits, zero budgets, out-of-range turbo length).
    pub fn validate(&self) {
        assert!(
            self.channel_bits_per_tx
                .is_multiple_of(self.modulation.bits_per_symbol()),
            "channel bits must be a multiple of bits/symbol"
        );
        assert!(
            (40..=5114).contains(&self.turbo_k()),
            "turbo input length out of 3GPP range"
        );
        assert!(
            self.max_transmissions >= 1,
            "need at least one transmission"
        );
        assert!(self.decoder_iterations >= 1, "need at least one iteration");
        assert!(
            self.channel_bits_per_tx >= self.turbo_k() + 6,
            "channel bits below self-decodability threshold"
        );
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_64qam()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_consistent() {
        let c = SystemConfig::paper_64qam();
        c.validate();
        assert_eq!(c.turbo_k(), 624);
        assert_eq!(c.coded_len(), 1884);
        assert_eq!(c.storage_cells(), 18_840);
        // 10 % defects ≈ 1 884 cells ≈ the paper's 2 000-cell quote.
        let ten_pct = (c.storage_cells() as f64 * 0.1) as u64;
        assert!((1500..2500).contains(&ten_pct));
        assert_eq!(c.symbols_per_tx(), 192);
        assert!((c.initial_rate() - 0.5417).abs() < 1e-3);
    }

    #[test]
    fn fast_config_consistent() {
        let c = SystemConfig::fast_test();
        c.validate();
        assert_eq!(c.turbo_k(), 144);
    }

    #[test]
    #[should_panic(expected = "multiple of bits/symbol")]
    fn bad_symbol_multiple_rejected() {
        let mut c = SystemConfig::paper_64qam();
        c.channel_bits_per_tx = 1153;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "self-decodability")]
    fn starved_budget_rejected() {
        let mut c = SystemConfig::fast_test();
        c.channel_bits_per_tx = 100;
        c.validate();
    }

    #[test]
    fn quantizer_matches_fields() {
        let c = SystemConfig::paper_64qam();
        let q = c.quantizer();
        assert_eq!(q.bits(), 10);
        assert_eq!(q.format(), LlrFormat::TwosComplement);
    }
}
