//! Parallel, deterministic Monte-Carlo execution engine.
//!
//! Every figure of the paper is thousands of independent packet
//! simulations spread over a grid of (SNR × storage configuration ×
//! defect density) operating points — an embarrassingly parallel
//! workload. [`SimulationEngine`] shards that work across OS threads
//! while keeping results **bit-identical for any thread count**,
//! including the serial path used by [`crate::montecarlo::run_point`].
//!
//! # Determinism model
//!
//! Randomness is organized as a seed tree rooted at a caller-supplied
//! master seed (see [`dsp::rng::derive_seed_path`]):
//!
//! ```text
//! master ─┬─ point 0 ─┬─ 0xfa        → fault map ("one die per run")
//!         │           └─ 1 ─┬─ pkt 0 → noise/data stream of packet 0
//!         │                 ├─ pkt 1 → noise/data stream of packet 1
//!         │                 └─ ...
//!         └─ point 1 ─ ...
//! ```
//!
//! A packet's stream depends only on its position in the tree — never on
//! the thread that simulates it — and [`HarqStats`] aggregation is a sum
//! of counters, so any shard-to-worker assignment yields the same
//! statistics. Buffers with internal randomness are re-anchored per
//! packet through [`LlrBuffer::begin_packet`].
//!
//! # Work decomposition
//!
//! [`SimulationEngine::run_batch`] flattens all operating points into
//! shards of [`SimulationEngine::shard_packets`] packets and lets workers
//! pull shards from a shared atomic counter (work stealing), so a single
//! expensive point — low SNR, many retransmissions — cannot serialize the
//! run. Each worker keeps one storage buffer per point (rebuilt
//! deterministically from the point's fault seed: the *same die*, per the
//! paper's worst-case methodology) plus one [`PacketScratch`], and merges
//! its partial statistics locally; the main thread folds worker partials
//! in task order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dsp::rng::{derive_seed, packet_seed, STREAM_FAULT_MAP};
use hspa_phy::harq::{HarqStats, LlrBuffer};

use hspa_phy::turbo::TurboBatchScratch;

use crate::config::SystemConfig;
use crate::montecarlo::{build_buffer, StorageConfig};
use crate::simulator::{LinkSimulator, PacketOutcome, PacketScratch, WaveScratch};
use crate::telemetry::{self, Counter, Histogram};

/// One Monte-Carlo operating point for [`SimulationEngine::run_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// LLR-storage backend under test.
    pub storage: StorageConfig,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Packets to simulate.
    pub n_packets: usize,
    /// Seed of this point's stream subtree.
    pub seed: u64,
}

/// An operating point for [`SimulationEngine::run_batch_with_buffers`]:
/// [`PointSpec`] minus the storage field. The caller's buffer factory
/// *is* the storage, so a (silently ignored) `StorageConfig` cannot be
/// supplied by mistake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CustomPoint {
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Packets to simulate.
    pub n_packets: usize,
    /// Seed of this point's stream subtree.
    pub seed: u64,
}

impl From<&PointSpec> for CustomPoint {
    fn from(spec: &PointSpec) -> Self {
        Self {
            snr_db: spec.snr_db,
            n_packets: spec.n_packets,
            seed: spec.seed,
        }
    }
}

/// A contiguous packet range of one operating point — the unit of work of
/// resumable campaigns ([`crate::campaign`]).
///
/// Packet `p` of a chunk draws the *same* RNG stream
/// (`packet_seed(seed, p)`) it would draw in a one-shot run of the whole
/// point, so any partition of `0..n` into chunks merges
/// ([`HarqStats::merge`]) to statistics bit-identical to a single
/// [`SimulationEngine::run_point`] over `n` packets.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkSpec {
    /// LLR-storage backend under test.
    pub storage: StorageConfig,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Absolute index of the first packet in the point's stream.
    pub first_packet: usize,
    /// Packets to simulate (`first_packet..first_packet + n_packets`).
    pub n_packets: usize,
    /// Seed of this point's stream subtree (shared by all its chunks).
    pub seed: u64,
    /// Explicit die seed; `None` derives the point's own
    /// (`derive_seed(seed, STREAM_FAULT_MAP)`). Grids use an explicit
    /// seed so every chunk of a row keeps sharing one die.
    pub fault_seed: Option<u64>,
}

/// [`ChunkSpec`] minus the storage field, for chunked runs over caller
/// buffer factories (mirrors [`CustomPoint`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CustomChunk {
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Absolute index of the first packet in the point's stream.
    pub first_packet: usize,
    /// Packets to simulate.
    pub n_packets: usize,
    /// Seed of this point's stream subtree (shared by all its chunks).
    pub seed: u64,
}

/// A full (storage × SNR) evaluation produced by
/// [`SimulationEngine::run_grid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    /// SNR grid (dB), shared by every row.
    pub snr_db: Vec<f64>,
    /// `stats[row][col]` = statistics of storage `row` at SNR `col`.
    pub stats: Vec<Vec<HarqStats>>,
}

/// Sharded Monte-Carlo executor over a [`LinkSimulator`].
///
/// Construction is cheap; the engine owns no threads between calls
/// (scoped workers are spawned per run).
#[derive(Debug, Clone)]
pub struct SimulationEngine {
    threads: usize,
    shard_packets: usize,
    batch_lanes: usize,
}

impl Default for SimulationEngine {
    fn default() -> Self {
        Self::auto()
    }
}

impl SimulationEngine {
    /// Default shard granularity: small enough to balance uneven points,
    /// large enough to amortize per-shard buffer setup — and exactly one
    /// default decode wave, since a wave never spans shards.
    const DEFAULT_SHARD: usize = 16;

    /// Default decode batch width: two full lockstep groups of the
    /// widest SIMD kernel. Waves wider than one group keep HARQ
    /// retransmission attempts (whose surviving lanes thin out) filling
    /// full-width groups, and lane draining absorbs the per-group
    /// iteration spread; sweeping widths 8..64 on the benchmark grid put
    /// 16 lanes ahead of 32 by ~5% (smaller staging footprint, same
    /// group utilization). Batching is bit-identical to the scalar path
    /// at every width, so it is on by default.
    pub const DEFAULT_BATCH: usize = 16;

    /// Engine using every available CPU.
    pub fn auto() -> Self {
        Self::with_threads(0)
    }

    /// Strictly serial engine (reference path; no worker threads).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// Engine with an explicit worker count; `0` means one worker per
    /// available CPU.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Self {
            threads,
            shard_packets: Self::DEFAULT_SHARD,
            batch_lanes: Self::DEFAULT_BATCH,
        }
    }

    /// Overrides the packets-per-shard granularity (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn shard_packets(mut self, n: usize) -> Self {
        assert!(n > 0, "shard size must be positive");
        self.shard_packets = n;
        self
    }

    /// Overrides the decode batch width (builder style). `1` runs the
    /// scalar per-packet path — structurally today's loop, not a 1-lane
    /// wave; any width produces bit-identical statistics, so this is a
    /// pure throughput knob and is deliberately *not* part of campaign
    /// point fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn batch_lanes(mut self, n: usize) -> Self {
        assert!(n > 0, "batch width must be positive");
        self.batch_lanes = n;
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The decode batch width in force.
    pub fn batch(&self) -> usize {
        self.batch_lanes
    }

    /// Evaluates one operating point.
    pub fn run_point(
        &self,
        sim: &LinkSimulator,
        storage: &StorageConfig,
        snr_db: f64,
        n_packets: usize,
        seed: u64,
    ) -> HarqStats {
        self.run_batch(
            sim,
            &[PointSpec {
                storage: storage.clone(),
                snr_db,
                n_packets,
                seed,
            }],
        )
        .pop()
        .expect("one spec in, one stats out")
    }

    /// Evaluates a later slice of an operating point's packet stream:
    /// packets `first_packet..first_packet + n_packets` of the stream
    /// rooted at `seed`.
    ///
    /// This is the resumable entry behind [`crate::campaign`]: a point
    /// simulated as any sequence of chunks (`run_point_resumed` calls
    /// whose ranges partition `0..n`) merges to statistics bit-identical
    /// to one [`SimulationEngine::run_point`] over `n` packets, because
    /// packet seeds depend only on the absolute packet index.
    pub fn run_point_resumed(
        &self,
        sim: &LinkSimulator,
        storage: &StorageConfig,
        snr_db: f64,
        first_packet: usize,
        n_packets: usize,
        seed: u64,
    ) -> HarqStats {
        self.run_chunks(
            sim,
            &[ChunkSpec {
                storage: storage.clone(),
                snr_db,
                first_packet,
                n_packets,
                seed,
                fault_seed: None,
            }],
        )
        .pop()
        .expect("one chunk in, one stats out")
    }

    /// Evaluates a batch of packet-range chunks (possibly of different
    /// operating points) in one sharded run.
    ///
    /// Chunks with the same storage and the same resolved die seed build
    /// identical buffers, so they share a buffer group — a campaign grid
    /// row (one die swept over SNRs) builds its fault map once per
    /// worker, matching [`SimulationEngine::run_grid`]'s behavior.
    ///
    /// Chunk scheduling is composition-invariant: a chunk's statistics
    /// depend only on `(seed, fault seed, snr, first_packet..+n)`, never
    /// on which other chunks share the batch, which worker runs it, or
    /// which process (host) submits it. This is the property multi-host
    /// campaign sharding ([`crate::campaign::shard`]) is built on — any
    /// partition of a grid's chunks across engines merges to the
    /// single-engine result bit for bit (`tests/shard.rs` proves it for
    /// random 1–4-way partitions).
    pub fn run_chunks(&self, sim: &LinkSimulator, chunks: &[ChunkSpec]) -> Vec<HarqStats> {
        let cfg = *sim.config();
        let points: Vec<CustomPoint> = chunks
            .iter()
            .map(|c| CustomPoint {
                snr_db: c.snr_db,
                n_packets: c.n_packets,
                seed: c.seed,
            })
            .collect();
        let offsets: Vec<usize> = chunks.iter().map(|c| c.first_packet).collect();
        let fault_seeds: Vec<u64> = chunks
            .iter()
            .map(|c| {
                c.fault_seed
                    .unwrap_or_else(|| derive_seed(c.seed, STREAM_FAULT_MAP))
            })
            .collect();
        let mut groups = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let group = (0..i)
                .find(|&j| fault_seeds[j] == fault_seeds[i] && chunks[j].storage == chunk.storage)
                .unwrap_or(i);
            groups.push(group);
        }
        self.run_specs(
            sim,
            &points,
            Some(&offsets),
            Some(&groups),
            &move |point, _derived| build_buffer(&cfg, &chunks[point].storage, fault_seeds[point]),
        )
    }

    /// Chunked variant of [`SimulationEngine::run_batch_with_buffers`]:
    /// packet ranges over caller-built buffers. The factory receives the
    /// chunk index and the chunk's fault-stream seed and must be
    /// deterministic in them.
    pub fn run_chunks_with_buffers<F>(
        &self,
        sim: &LinkSimulator,
        chunks: &[CustomChunk],
        make_buffer: F,
    ) -> Vec<HarqStats>
    where
        F: Fn(usize, u64) -> Box<dyn LlrBuffer + Send> + Sync,
    {
        let points: Vec<CustomPoint> = chunks
            .iter()
            .map(|c| CustomPoint {
                snr_db: c.snr_db,
                n_packets: c.n_packets,
                seed: c.seed,
            })
            .collect();
        let offsets: Vec<usize> = chunks.iter().map(|c| c.first_packet).collect();
        self.run_specs(sim, &points, Some(&offsets), None, &make_buffer)
    }

    /// Evaluates one storage configuration over an SNR sweep. Point `i`
    /// draws its own die from `derive_seed(seed, i)`, matching the
    /// historical serial sweep semantics.
    pub fn run_sweep(
        &self,
        sim: &LinkSimulator,
        storage: &StorageConfig,
        snrs_db: &[f64],
        n_packets: usize,
        seed: u64,
    ) -> Vec<HarqStats> {
        let specs: Vec<PointSpec> = snrs_db
            .iter()
            .enumerate()
            .map(|(i, &snr_db)| PointSpec {
                storage: storage.clone(),
                snr_db,
                n_packets,
                seed: derive_seed(seed, i as u64),
            })
            .collect();
        self.run_batch(sim, &specs)
    }

    /// Evaluates a full (storage × SNR) matrix in one sharded run.
    ///
    /// Row `r` takes its subtree from `derive_seed(master_seed, r)`;
    /// within a row every SNR point shares **one die** (one fault-map
    /// draw), so a row is a physical device swept over operating SNRs —
    /// the paper's worst-case single-map methodology. Buffers are also
    /// cached per row (not per cell) inside each worker, so the shared
    /// die is actually built once per (worker, row), not once per grid
    /// cell.
    pub fn run_grid(
        &self,
        sim: &LinkSimulator,
        storages: &[StorageConfig],
        snrs_db: &[f64],
        n_packets: usize,
        master_seed: u64,
    ) -> GridResult {
        let cfg = *sim.config();
        let mut specs = Vec::with_capacity(storages.len() * snrs_db.len());
        let mut fault_seeds = Vec::with_capacity(specs.capacity());
        let mut groups = Vec::with_capacity(specs.capacity());
        for (r, storage) in storages.iter().enumerate() {
            let row_seed = derive_seed(master_seed, r as u64);
            let die_seed = derive_seed(row_seed, STREAM_FAULT_MAP);
            for (c, &snr_db) in snrs_db.iter().enumerate() {
                specs.push(PointSpec {
                    storage: storage.clone(),
                    snr_db,
                    n_packets,
                    seed: derive_seed(row_seed, 0x100 + c as u64),
                });
                fault_seeds.push(die_seed);
                groups.push(r);
            }
        }
        let points: Vec<CustomPoint> = specs.iter().map(CustomPoint::from).collect();
        let flat = self.run_specs(sim, &points, None, Some(&groups), &|point, _seed| {
            build_buffer(&cfg, &specs[point].storage, fault_seeds[point])
        });
        let mut rows = Vec::with_capacity(storages.len());
        let mut it = flat.into_iter();
        for _ in 0..storages.len() {
            rows.push(it.by_ref().take(snrs_db.len()).collect());
        }
        GridResult {
            snr_db: snrs_db.to_vec(),
            stats: rows,
        }
    }

    /// Evaluates an arbitrary batch of operating points. Each point draws
    /// its die from `derive_seed(point.seed, STREAM_FAULT_MAP)`.
    pub fn run_batch(&self, sim: &LinkSimulator, specs: &[PointSpec]) -> Vec<HarqStats> {
        let cfg = *sim.config();
        let points: Vec<CustomPoint> = specs.iter().map(CustomPoint::from).collect();
        self.run_specs(sim, &points, None, None, &move |point, fault_seed| {
            build_buffer(&cfg, &specs[point].storage, fault_seed)
        })
    }

    /// Evaluates points whose LLR buffers come from a caller factory —
    /// the escape hatch for backends outside [`StorageConfig`] (e.g.
    /// transient soft-error wrappers). The factory receives the point
    /// index and the point's fault-stream seed, and must be
    /// deterministic in them.
    pub fn run_batch_with_buffers<F>(
        &self,
        sim: &LinkSimulator,
        points: &[CustomPoint],
        make_buffer: F,
    ) -> Vec<HarqStats>
    where
        F: Fn(usize, u64) -> Box<dyn LlrBuffer + Send> + Sync,
    {
        self.run_specs(sim, points, None, None, &make_buffer)
    }

    /// `offsets`, when given, shifts each point's packet range to start
    /// at an absolute packet index (`None`: every point starts at packet
    /// 0) — the chunked-campaign path. `groups`, when given, assigns
    /// each point a buffer-sharing group: points in one group must
    /// deterministically build identical buffers (same storage, same die
    /// seed), and each worker then builds that buffer once per group
    /// instead of once per point. `None` means every point is its own
    /// group.
    fn run_specs(
        &self,
        sim: &LinkSimulator,
        specs: &[CustomPoint],
        offsets: Option<&[usize]>,
        groups: Option<&[usize]>,
        make_buffer: &(dyn Fn(usize, u64) -> Box<dyn LlrBuffer + Send> + Sync),
    ) -> Vec<HarqStats> {
        let cfg = *sim.config();
        // Flatten every point into packet shards over absolute indices.
        let mut tasks: Vec<Shard> = Vec::new();
        for (point, spec) in specs.iter().enumerate() {
            let first = offsets.map_or(0, |o| o[point]);
            let mut start = first;
            while start < first + spec.n_packets {
                let count = self.shard_packets.min(first + spec.n_packets - start);
                tasks.push(Shard {
                    point,
                    start,
                    count,
                });
                start += count;
            }
        }

        let workers = self.threads.min(tasks.len()).max(1);
        let batch_lanes = self.batch_lanes;
        let mut partials: Vec<Vec<(usize, HarqStats)>> = if workers == 1 {
            let mut worker =
                Worker::new(&cfg, sim.clone(), specs, groups, make_buffer, batch_lanes);
            vec![tasks
                .iter()
                .map(|t| (t.point, worker.run_shard(t)))
                .collect()]
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let tasks = &tasks;
                        let sim = sim.clone();
                        scope.spawn(move || {
                            let mut worker =
                                Worker::new(&cfg, sim, specs, groups, make_buffer, batch_lanes);
                            let mut out = Vec::new();
                            loop {
                                let t = next.fetch_add(1, Ordering::Relaxed);
                                let Some(task) = tasks.get(t) else { break };
                                out.push((task.point, worker.run_shard(task)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        };

        // Fold worker partials; order is irrelevant for the result
        // because HarqStats::merge is a sum of counters.
        let mut merged: Vec<HarqStats> = specs
            .iter()
            .map(|_| HarqStats::new(cfg.max_transmissions, cfg.payload_bits))
            .collect();
        for (point, stats) in partials.drain(..).flatten() {
            merged[point].merge(&stats);
        }
        merged
    }
}

/// One contiguous range of packets of one operating point; `start` is an
/// absolute index into the point's packet stream (non-zero for resumed
/// chunks).
struct Shard {
    point: usize,
    start: usize,
    count: usize,
}

/// Per-thread execution state: a simulator handle, one buffer *set* per
/// point touched (`batch_lanes` interchangeable buffers, each built by
/// the same deterministic factory — the same die), and reusable scratch
/// space for both the scalar path and the batched wave path.
struct Worker<'a> {
    cfg: &'a SystemConfig,
    sim: LinkSimulator,
    specs: &'a [CustomPoint],
    /// Buffer-sharing group per point (`None`: one group per point).
    groups: Option<&'a [usize]>,
    make_buffer: &'a (dyn Fn(usize, u64) -> Box<dyn LlrBuffer + Send> + Sync),
    // determinism: unordered-ok(keyed entry access only; never iterated)
    buffers: HashMap<usize, Vec<Box<dyn LlrBuffer + Send>>>,
    batch_lanes: usize,
    lane_scratch: Vec<PacketScratch>,
    rngs: Vec<StdRng>,
    outcomes: Vec<PacketOutcome>,
    batch: TurboBatchScratch,
    wave: WaveScratch,
}

impl<'a> Worker<'a> {
    fn new(
        cfg: &'a SystemConfig,
        sim: LinkSimulator,
        specs: &'a [CustomPoint],
        groups: Option<&'a [usize]>,
        make_buffer: &'a (dyn Fn(usize, u64) -> Box<dyn LlrBuffer + Send> + Sync),
        batch_lanes: usize,
    ) -> Self {
        Self {
            cfg,
            sim,
            specs,
            groups,
            make_buffer,
            // determinism: unordered-ok(keyed entry access only; never iterated)
            buffers: HashMap::new(),
            batch_lanes,
            lane_scratch: vec![PacketScratch::new()],
            rngs: Vec::new(),
            outcomes: Vec::new(),
            batch: TurboBatchScratch::new(),
            wave: WaveScratch::new(),
        }
    }

    fn run_shard(&mut self, shard: &Shard) -> HarqStats {
        if self.batch_lanes > 1 {
            return self.run_shard_batched(shard);
        }
        let spec = &self.specs[shard.point];
        let make_buffer = self.make_buffer;
        let group = self.groups.map_or(shard.point, |g| g[shard.point]);
        // One buffer suffices on the scalar path; the Vec keeps the
        // cache shape shared with the batched path.
        let set = self.buffers.entry(group).or_default();
        if set.is_empty() {
            let fault_seed = derive_seed(spec.seed, STREAM_FAULT_MAP);
            set.push(make_buffer(shard.point, fault_seed));
        }
        let buffer = &mut set[0];
        let mut stats = HarqStats::new(self.cfg.max_transmissions, self.cfg.payload_bits);
        for p in shard.start..shard.start + shard.count {
            let pseed = packet_seed(spec.seed, p as u64);
            let mut rng = StdRng::seed_from_u64(pseed);
            buffer.begin_packet(pseed);
            let outcome = self.sim.simulate_packet_with(
                spec.snr_db,
                buffer,
                &mut rng,
                &mut self.lane_scratch[0],
            );
            stats.record(outcome.success_after, self.cfg.max_transmissions);
        }
        telemetry::counter_add(Counter::PacketsSimulated, shard.count as u64);
        flush_stage_nanos(&mut self.lane_scratch[0]);
        stats
    }

    /// Batched wave path: consecutive packets of the shard fill up to
    /// `batch_lanes` lanes, each against its own buffer/RNG, and decode
    /// together. Lane `l` of a wave draws the stream of absolute packet
    /// `p + l` — the same seed-tree position as the scalar loop — and
    /// batched decoding is bit-identical per lane, so the recorded
    /// statistics equal the scalar path's at every width. Lanes of a
    /// group's buffer set are interchangeable: the factory is
    /// deterministic in `(point, fault_seed)` — the same die — and all
    /// per-packet buffer randomness is re-anchored through
    /// [`LlrBuffer::begin_packet`] (the property the engine's
    /// thread-invariance already rests on), so N copies behave exactly
    /// like one buffer reused serially.
    fn run_shard_batched(&mut self, shard: &Shard) -> HarqStats {
        let spec = self.specs[shard.point];
        let make_buffer = self.make_buffer;
        let group = self.groups.map_or(shard.point, |g| g[shard.point]);
        let mut stats = HarqStats::new(self.cfg.max_transmissions, self.cfg.payload_bits);
        while self.lane_scratch.len() < self.batch_lanes {
            self.lane_scratch.push(PacketScratch::new());
        }
        let end = shard.start + shard.count;
        let mut p = shard.start;
        while p < end {
            let width = self.batch_lanes.min(end - p);
            let set = self.buffers.entry(group).or_default();
            while set.len() < width {
                let fault_seed = derive_seed(spec.seed, STREAM_FAULT_MAP);
                set.push(make_buffer(shard.point, fault_seed));
            }
            self.rngs.clear();
            for (l, buf) in set.iter_mut().take(width).enumerate() {
                let pseed = packet_seed(spec.seed, (p + l) as u64);
                buf.begin_packet(pseed);
                self.rngs.push(StdRng::seed_from_u64(pseed));
            }
            self.outcomes.clear();
            self.outcomes.resize(
                width,
                PacketOutcome {
                    success_after: None,
                    transmissions_used: 0,
                },
            );
            self.sim.simulate_wave_with(
                spec.snr_db,
                &mut set[..width],
                &mut self.rngs[..width],
                &mut self.lane_scratch[..width],
                &mut self.batch,
                &mut self.wave,
                &mut self.outcomes[..width],
            );
            telemetry::counter_add(Counter::WavesDecoded, 1);
            telemetry::hist_record(Histogram::WaveLaneOccupancy, width as u64);
            for outcome in &self.outcomes {
                stats.record(outcome.success_after, self.cfg.max_transmissions);
            }
            p += width;
        }
        telemetry::counter_add(Counter::PacketsSimulated, shard.count as u64);
        for scratch in &mut self.lane_scratch {
            flush_stage_nanos(scratch);
        }
        stats
    }
}

/// Flushes a scratch's per-stage timing tallies into the global
/// telemetry counters and resets them — once per shard, so the packet
/// hot path itself touches no atomics.
fn flush_stage_nanos(scratch: &mut PacketScratch) {
    let n = scratch.stage_nanos;
    telemetry::counter_add(Counter::StageEncodeNanos, n.encode);
    telemetry::counter_add(Counter::StageModulateNanos, n.modulate);
    telemetry::counter_add(Counter::StageChannelNanos, n.channel);
    telemetry::counter_add(Counter::StageEqualizeNanos, n.equalize);
    telemetry::counter_add(Counter::StageDemapNanos, n.demap);
    telemetry::counter_add(Counter::StageHarqNanos, n.harq);
    telemetry::counter_add(Counter::StageDecodeNanos, n.decode);
    scratch.reset_stage_nanos();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::DefectSpec;
    use silicon::fault_map::FaultKind;

    fn engine_stats(threads: usize, shard: usize) -> Vec<HarqStats> {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let engine = SimulationEngine::with_threads(threads).shard_packets(shard);
        engine.run_batch(
            &sim,
            &[
                PointSpec {
                    storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
                    snr_db: 10.0,
                    n_packets: 10,
                    seed: 42,
                },
                PointSpec {
                    storage: StorageConfig::Quantized,
                    snr_db: 18.0,
                    n_packets: 7,
                    seed: 43,
                },
            ],
        )
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = engine_stats(1, 8);
        for (threads, shard) in [(2, 8), (4, 3), (8, 1)] {
            assert_eq!(
                serial,
                engine_stats(threads, shard),
                "threads={threads} shard={shard} must match serial"
            );
        }
    }

    #[test]
    fn packet_counts_are_exact() {
        let stats = engine_stats(3, 4);
        assert_eq!(stats[0].packets, 10);
        assert_eq!(stats[1].packets, 7);
    }

    #[test]
    fn batch_width_does_not_change_results() {
        // Faulty storage included on purpose: buffer-set replication
        // must behave exactly like one buffer reused serially.
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let specs = [
            PointSpec {
                storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
                snr_db: 8.0,
                n_packets: 13,
                seed: 21,
            },
            PointSpec {
                storage: StorageConfig::Quantized,
                snr_db: 16.0,
                n_packets: 9,
                seed: 22,
            },
        ];
        let run = |threads: usize, lanes: usize| {
            SimulationEngine::with_threads(threads)
                .shard_packets(5)
                .batch_lanes(lanes)
                .run_batch(&sim, &specs)
        };
        let scalar = run(1, 1);
        for (threads, lanes) in [(1, 2), (1, 8), (2, 4), (4, 8), (1, 13)] {
            assert_eq!(
                scalar,
                run(threads, lanes),
                "threads={threads} lanes={lanes} must match the scalar path"
            );
        }
    }

    #[test]
    fn grid_shares_one_die_per_row() {
        // With a per-row die, the SNR=∞-ish column of a faulty row is
        // reproducible: run the grid twice and compare.
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let engine = SimulationEngine::serial();
        let storages = [
            StorageConfig::Quantized,
            StorageConfig::unprotected(0.10, cfg.llr_bits),
        ];
        let a = engine.run_grid(&sim, &storages, &[10.0, 20.0], 5, 7);
        let b = engine.run_grid(&sim, &storages, &[10.0, 20.0], 5, 7);
        assert_eq!(a, b);
        assert_eq!(a.stats.len(), 2);
        assert_eq!(a.stats[0].len(), 2);
    }

    #[test]
    fn batch_with_custom_buffers_is_deterministic() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let spec = vec![CustomPoint {
            snr_db: 14.0,
            n_packets: 9,
            seed: 5,
        }];
        let run = |threads| {
            SimulationEngine::with_threads(threads)
                .shard_packets(2)
                .run_batch_with_buffers(&sim, &spec, |_, fault_seed| {
                    Box::new(crate::buffer::TransientLlrBuffer::new(
                        crate::buffer::QuantizedLlrBuffer::new(cfg.coded_len(), cfg.quantizer()),
                        cfg.quantizer(),
                        0.01,
                        fault_seed,
                    ))
                })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn chunks_partition_to_one_shot() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
        let engine = SimulationEngine::with_threads(2).shard_packets(3);
        let one_shot = engine.run_point(&sim, &storage, 12.0, 11, 77);
        // 11 packets split 0..4, 4..9, 9..11.
        let mut merged = HarqStats::new(cfg.max_transmissions, cfg.payload_bits);
        for (first, n) in [(0, 4), (4, 5), (9, 2)] {
            merged.merge(&engine.run_point_resumed(&sim, &storage, 12.0, first, n, 77));
        }
        assert_eq!(one_shot, merged);
    }

    #[test]
    fn chunk_fault_seed_override_pins_the_die() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
        let engine = SimulationEngine::serial();
        let chunk = |fault_seed| {
            engine.run_chunks(
                &sim,
                &[ChunkSpec {
                    storage: storage.clone(),
                    snr_db: 8.0,
                    first_packet: 0,
                    n_packets: 8,
                    seed: 9,
                    fault_seed,
                }],
            )
        };
        // `None` derives the point's own die — identical to run_point.
        assert_eq!(chunk(None)[0], engine.run_point(&sim, &storage, 8.0, 8, 9));
        // An explicit die seed is honored deterministically.
        assert_eq!(chunk(Some(123)), chunk(Some(123)));
    }

    #[test]
    fn ecc_storage_runs_through_engine() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let stats = SimulationEngine::with_threads(2).run_point(
            &sim,
            &StorageConfig::Ecc {
                defects: DefectSpec::Fraction(0.001),
                fault_kind: FaultKind::Flip,
            },
            25.0,
            6,
            5,
        );
        assert_eq!(stats.packets, 6);
        assert_eq!(stats.delivered, stats.packets);
    }
}
