//! Per-stage time breakdown of the packet hot path.
//!
//! Stage timing is always on (see `telemetry`), so a plain release run
//! gives real numbers:
//!
//! ```text
//! cargo run --release -p resilience-core --example stage_profile
//! ```

use rand::SeedableRng;
use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{build_buffer, StorageConfig};
use resilience_core::simulator::{LinkSimulator, PacketScratch};

fn main() {
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let storages = [
        ("ideal", StorageConfig::Perfect),
        (
            "faulty10pct",
            StorageConfig::unprotected(0.10, cfg.llr_bits),
        ),
    ];
    for (name, storage) in &storages {
        for &snr in &[9.0f64, 18.0] {
            let mut buffer = build_buffer(&cfg, storage, 1);
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            let mut scratch = PacketScratch::new();
            let packets = 100;
            for _ in 0..packets {
                sim.simulate_packet_with(snr, &mut buffer, &mut rng, &mut scratch);
            }
            let s = scratch.stage_nanos;
            let total = s.total().max(1) as f64 / 1000.0 / packets as f64;
            println!("{name}/{snr}dB  ({total:.0} us accounted/packet)");
            for (stage, ns) in [
                ("encode", s.encode),
                ("modulate", s.modulate),
                ("channel", s.channel),
                ("equalize", s.equalize),
                ("demap", s.demap),
                ("harq", s.harq),
                ("decode", s.decode),
            ] {
                let us = ns as f64 / 1000.0 / packets as f64;
                println!(
                    "  {stage:<9} {us:>9.1} us/packet ({:>4.1}%)",
                    100.0 * us / total
                );
            }
        }
    }
}
