//! Per-stage time breakdown of the batched wave hot path.
//!
//! The scalar `stage_profile` example measures `simulate_packet_with`;
//! this one drives `simulate_wave_with` directly at a fixed lane width,
//! so the numbers show where a lockstep wave actually spends its time
//! (the batched `decode` stage is recorded against lane 0 and reported
//! per packet here).
//!
//! Stage timing is always on (see `telemetry`), so a plain release run
//! gives real numbers:
//!
//! ```text
//! cargo run --release -p resilience-core --example wave_profile [-- <lanes>]
//! ```

use hspa_phy::turbo::TurboBatchScratch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{build_buffer, StorageConfig};
use resilience_core::simulator::{
    LinkSimulator, PacketOutcome, PacketScratch, StageNanos, WaveScratch,
};

fn main() {
    let lanes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let storages = [
        ("quantized", StorageConfig::Quantized),
        (
            "faulty10pct",
            StorageConfig::unprotected(0.10, cfg.llr_bits),
        ),
        (
            "hybrid4msb",
            StorageConfig::msb_protected(4, 0.10, cfg.llr_bits),
        ),
    ];
    println!("wave width: {lanes} lanes");
    for (name, storage) in &storages {
        for &snr in &[9.0f64, 13.0, 18.0] {
            let mut buffers: Vec<_> = (0..lanes).map(|_| build_buffer(&cfg, storage, 1)).collect();
            let mut rngs: Vec<StdRng> = Vec::new();
            let mut scratches: Vec<PacketScratch> =
                (0..lanes).map(|_| PacketScratch::new()).collect();
            let mut batch = TurboBatchScratch::new();
            let mut wave = WaveScratch::new();
            let mut out = vec![
                PacketOutcome {
                    success_after: None,
                    transmissions_used: 0,
                };
                lanes
            ];
            let waves = 8;
            for w in 0..waves {
                rngs.clear();
                for (l, buf) in buffers.iter_mut().enumerate() {
                    let pseed = dsp::rng::packet_seed(7, (w * lanes + l) as u64);
                    rngs.push(StdRng::seed_from_u64(pseed));
                    buf.begin_packet(pseed);
                }
                sim.simulate_wave_with(
                    snr,
                    &mut buffers,
                    &mut rngs,
                    &mut scratches,
                    &mut batch,
                    &mut wave,
                    &mut out,
                );
            }
            let packets = (waves * lanes) as f64;
            let mut sum = StageNanos::default();
            for s in &scratches {
                let n = &s.stage_nanos;
                sum.encode += n.encode;
                sum.modulate += n.modulate;
                sum.channel += n.channel;
                sum.equalize += n.equalize;
                sum.demap += n.demap;
                sum.harq += n.harq;
                sum.decode += n.decode;
            }
            let total = sum.total().max(1) as f64 / 1000.0 / packets;
            println!("{name}/{snr}dB  ({total:.0} us accounted/packet)");
            for (stage, ns) in [
                ("encode", sum.encode),
                ("modulate", sum.modulate),
                ("channel", sum.channel),
                ("equalize", sum.equalize),
                ("demap", sum.demap),
                ("harq", sum.harq),
                ("decode", sum.decode),
            ] {
                let us = ns as f64 / 1000.0 / packets;
                let pct = 100.0 * ns as f64 / sum.total().max(1) as f64;
                println!("  {stage:<9} {us:>7.1} us/packet ({pct:>4.1}%)");
            }
        }
    }
}
