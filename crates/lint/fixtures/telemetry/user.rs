//! References `Hits` and `Stalls`; one literal event name (fine) and
//! one computed name (fires).

pub fn tick(log: &Log, which: &str) {
    add(Counter::Hits);
    add(Counter::Stalls);
    log.emit("merge-complete", &[]);
    log.emit(which, &[]); //~ ERROR telemetry-catalog
}
