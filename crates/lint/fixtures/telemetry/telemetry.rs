//! Telemetry-catalog fixture: `Misses` is catalogued but never
//! referenced (dead metric); `Stalls` is referenced but missing from
//! `ALL` (exposition would skip it).

pub enum Counter {
    Hits,
    Misses, //~ ERROR telemetry-catalog
    Stalls, //~ ERROR telemetry-catalog
}

impl Counter {
    pub const ALL: [Counter; 2] = [Counter::Hits, Counter::Misses];
}
