//! Fingerprint fixture: `seed` enters through a format capture,
//! `snr_db` as a body identifier, `storage` through its `{:?}` repr.

pub fn point_fingerprint(storage: &Cfg, snr_db: f64, seed: u64) -> String {
    format!("v1|{storage:?}|snr={:016x}|seed={seed}", snr_db.to_bits())
}
