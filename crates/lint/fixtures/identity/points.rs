//! Identity-coverage fixture: one uncovered field, one annotated
//! exclusion, and a debug-hashed type that both misses the `Debug`
//! derive and carries a manual impl.

pub struct Point {
    pub seed: u64,
    pub snr_db: f64,
    pub label: String, //~ ERROR identity-coverage
    // identity: excluded(budget cap; chunks are keyed per packet index, never by the cap)
    pub max_packets: usize,
}

#[derive(Clone)]
pub struct Cfg { //~ ERROR identity-coverage
    pub bits: u8,
}

impl core::fmt::Debug for Cfg { //~ ERROR identity-coverage
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Cfg")
    }
}
