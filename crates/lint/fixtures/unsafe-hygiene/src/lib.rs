//~ ERROR unsafe-hygiene
//! Unsafe-hygiene fixture: the crate root misses
//! `#![forbid(unsafe_code)]` (anchored at line 1) and the first unsafe
//! block has no `SAFETY:` justification.

pub fn peek(v: &[u8], i: usize) -> u8 {
    unsafe { *v.get_unchecked(i) } //~ ERROR unsafe-hygiene
}

pub fn peek_justified(v: &[u8], i: usize) -> u8 {
    assert!(i < v.len());
    // SAFETY: the assert above bounds i within v
    unsafe { *v.get_unchecked(i) }
}
