//! Hot-path allocation fixture: allocations reachable from the root
//! fire (directly and through a callee); the function-level cold
//! annotation prunes the setup path.

pub fn simulate_packet_with(scratch: &mut Scratch) -> u32 {
    if scratch.buf.is_empty() {
        *scratch = build_scratch();
    }
    let header = Vec::new(); //~ ERROR hot-path-alloc
    let _ = header;
    helper(scratch)
}

fn helper(scratch: &mut Scratch) -> u32 {
    let msg = format!("packet {}", scratch.id); //~ ERROR hot-path-alloc
    msg.len() as u32
}

// alloc: cold(worker setup; runs once per worker, not per packet)
fn build_scratch() -> Scratch {
    Scratch {
        buf: vec![0u8; 64],
        id: 0,
    }
}

pub struct Scratch {
    pub buf: Vec<u8>,
    pub id: u64,
}
