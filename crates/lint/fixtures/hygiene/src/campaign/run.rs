//! Error-hygiene fixture: unwrap/expect/panic in hardened library code
//! fire; the annotated infallible conversion and test code do not.

pub fn load(path: &str) -> u32 {
    let data = std::fs::read(path).unwrap(); //~ ERROR no-unwrap
    let n = parse(&data).expect("parse"); //~ ERROR no-unwrap
    if n == 0 {
        panic!("empty store"); //~ ERROR no-panic
    }
    n
}

pub fn checked(bytes: &[u8]) -> u32 {
    assert!(bytes.len() >= 4);
    // lint: allow(no-unwrap, infallible: a 4-byte slice always converts to [u8; 4])
    u32::from_le_bytes(bytes[..4].try_into().unwrap())
}

fn parse(_data: &[u8]) -> Option<u32> {
    Some(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!("4".parse::<u32>().unwrap(), 4);
    }
}
