//! Wallclock fixture: clock reads and ambient entropy in simulation
//! code fire; the annotated watchdog read does not.

pub fn stamp() -> u64 {
    let started = std::time::Instant::now(); //~ ERROR wallclock
    let epoch = std::time::SystemTime::now(); //~ ERROR wallclock
    let mut rng = rand::thread_rng(); //~ ERROR wallclock
    let _ = (started, epoch, &mut rng);
    0
}

pub fn stalled(deadline_secs: u64) -> bool {
    // determinism: wallclock(stall watchdog; compares wall time, never feeds results)
    let now = std::time::Instant::now();
    now.elapsed().as_secs() > deadline_secs
}
