//! Hash-order fixture: an unannotated `HashMap` in an order-sensitive
//! module fires; the `use` line and the justified field do not.

use std::collections::HashMap;

pub struct Index {
    map: HashMap<u64, u64>, //~ ERROR hash-order
    // determinism: unordered-ok(keyed lookups only; never iterated)
    cache: HashMap<u64, u64>,
}
