//! Annotation-syntax fixture: every malformed escape hatch is itself a
//! finding — a silencing annotation with no recorded reason is worse
//! than none.

// identity: excluded //~ ERROR annotation-syntax
pub const MISSING_CALL: u8 = 0;

// alloc: cold() //~ ERROR annotation-syntax
pub const EMPTY_REASON: u8 = 1;

// determinism: trust-me(it is fine) //~ ERROR annotation-syntax
pub const UNKNOWN_MODE: u8 = 2;

// lint: allow(no-unwrap) //~ ERROR annotation-syntax
pub const ALLOW_WITHOUT_REASON: u8 = 3;

// SAFETY:
//~^ ERROR annotation-syntax
pub const EMPTY_SAFETY: u8 = 4;
