//! Machine-readable diagnostics: one line per finding,
//! `path:line: [lint-id] message`.

use std::fmt;
use std::path::PathBuf;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the lint root, `/`-separated.
    pub file: PathBuf,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<PathBuf>,
        line: u32,
        lint: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            lint,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}
