//! CLI driver: `resilience-lint [--deny] [--root <path>]`.
//!
//! Prints one machine-readable diagnostic per line
//! (`path:line: [lint-id] message`) and a summary. Exit code 0 in
//! advisory mode (default); with `--deny` — the CI mode — any finding
//! exits 1. I/O or usage errors exit 2.

use std::path::PathBuf;
use std::process::ExitCode;

use resilience_lint::LintConfig;

const USAGE: &str = "\
usage: resilience-lint [--deny] [--root <path>]

Workspace contract linter: statically enforces the determinism,
identity, hot-path and error-hygiene invariants.

options:
  --deny         exit 1 on any finding (CI mode); default is advisory
  --root <path>  workspace root (default: nearest ancestor with a
                 [workspace] Cargo.toml)
  -h, --help     show this help";

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("resilience-lint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("resilience-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!("resilience-lint: no [workspace] Cargo.toml found above the current directory (use --root)");
            return ExitCode::from(2);
        }
    };

    let cfg = LintConfig::workspace(&root);
    let diags = match resilience_lint::run(&cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("resilience-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &diags {
        println!("{d}");
    }
    let mode = if deny { "deny" } else { "advisory" };
    eprintln!(
        "resilience-lint: {} finding(s) ({mode} mode, root: {})",
        diags.len(),
        root.display()
    );
    if deny && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Nearest ancestor of the current directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
