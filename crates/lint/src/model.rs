//! A shallow item model over the token stream: functions (with impl
//! context and test classification), structs with fields and derives,
//! enums with variants, plus per-token masks for `#[cfg(test)]` regions
//! and `use` statements.
//!
//! This is **not** a Rust parser. It recognises exactly the item shapes
//! the lints need and skips everything else token-by-token, which makes
//! it robust to code it does not understand: unrecognised syntax simply
//! produces no items, and lints degrade to pure token scans.

use crate::lexer::{Lexed, Tok, Token};

/// A `fn` item.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Type name of the enclosing `impl`/`trait` block, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword — annotation attachment point
    /// for fn-level `alloc: cold(...)`.
    pub sig_line: u32,
    /// Token index range of the body, exclusive of the braces.
    pub body: (usize, usize),
    /// Inside a `#[cfg(test)]` module, or carries `#[test]`/`#[bench]`.
    pub is_test: bool,
}

/// A named-field `struct` item (tuple and unit structs keep an empty
/// field list).
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    pub fields: Vec<(String, u32)>,
    pub derives: Vec<String>,
    pub is_test: bool,
}

/// An `enum` item.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    pub variants: Vec<(String, u32)>,
    pub derives: Vec<String>,
    pub is_test: bool,
}

/// Shallow model of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub functions: Vec<Function>,
    pub structs: Vec<StructDef>,
    pub enums: Vec<EnumDef>,
    /// File carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Per-token: token sits inside a `#[cfg(test)]` module or a
    /// `#[test]`/`#[bench]` function.
    pub test_mask: Vec<bool>,
    /// Per-token: token belongs to a `use ...;` statement.
    pub use_mask: Vec<bool>,
}

impl FileModel {
    pub fn in_test(&self, tok_idx: usize) -> bool {
        self.test_mask.get(tok_idx).copied().unwrap_or(false)
    }

    pub fn in_use(&self, tok_idx: usize) -> bool {
        self.use_mask.get(tok_idx).copied().unwrap_or(false)
    }
}

/// Words that can sit between an attribute and the item keyword it
/// decorates, or between `impl` and the implemented type.
const MODIFIERS: &[&str] = &[
    "pub", "crate", "async", "const", "unsafe", "extern", "default",
];

pub fn build(lexed: &Lexed) -> FileModel {
    let toks = &lexed.tokens;
    let mut model = FileModel {
        test_mask: vec![false; toks.len()],
        use_mask: vec![false; toks.len()],
        ..FileModel::default()
    };
    let ctx = Ctx {
        impl_type: None,
        in_test: false,
    };
    parse_range(toks, 0, toks.len(), &ctx, &mut model);
    model
}

#[derive(Clone)]
struct Ctx {
    impl_type: Option<String>,
    in_test: bool,
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Index of the delimiter matching the opener at `open_idx` (one of
/// `(`/`[`/`{`). Falls back to the end of the stream on imbalance.
fn matching(toks: &[Token], open_idx: usize) -> usize {
    let (open, close) = match toks[open_idx].tok {
        Tok::Punct('(') => ('(', ')'),
        Tok::Punct('[') => ('[', ']'),
        Tok::Punct('{') => ('{', '}'),
        _ => return open_idx,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        match &t.tok {
            Tok::Punct(c) if *c == open => depth += 1,
            Tok::Punct(c) if *c == close => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// First index in `range` holding punct `c` at zero delimiter depth.
fn find_at_depth0(toks: &[Token], start: usize, end: usize, wanted: &[char]) -> Option<usize> {
    let mut j = start;
    while j < end {
        match &toks[j].tok {
            Tok::Punct(c) if wanted.contains(c) => return Some(j),
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                j = matching(toks, j) + 1;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn parse_range(toks: &[Token], start: usize, end: usize, ctx: &Ctx, model: &mut FileModel) {
    let mut pending: Vec<Vec<String>> = Vec::new();
    let mut i = start;
    while i < end {
        match &toks[i].tok {
            Tok::Punct('#') => {
                let mut j = i + 1;
                let inner = is_punct(toks.get(j), '!');
                if inner {
                    j += 1;
                }
                if is_punct(toks.get(j), '[') {
                    let close = matching(toks, j);
                    let idents: Vec<String> = toks[j..=close]
                        .iter()
                        .filter_map(|t| ident(t).map(str::to_string))
                        .collect();
                    if inner {
                        if idents.iter().any(|s| s == "forbid")
                            && idents.iter().any(|s| s == "unsafe_code")
                        {
                            model.has_forbid_unsafe = true;
                        }
                    } else {
                        pending.push(idents);
                    }
                    i = close + 1;
                } else {
                    i = j;
                }
            }
            Tok::Ident(kw) if kw == "mod" => {
                let is_test = ctx.in_test || attrs_mark_test_cfg(&pending);
                pending.clear();
                match find_at_depth0(toks, i + 1, end, &['{', ';']) {
                    Some(b) if is_punct(toks.get(b), '{') => {
                        let close = matching(toks, b);
                        if is_test {
                            mark(&mut model.test_mask, i, close);
                        }
                        let inner = Ctx {
                            impl_type: None,
                            in_test: is_test,
                        };
                        parse_range(toks, b + 1, close, &inner, model);
                        i = close + 1;
                    }
                    Some(semi) => i = semi + 1,
                    None => i = end,
                }
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                pending.clear();
                let (type_name, body_open) = impl_header(toks, i + 1, end);
                match body_open {
                    Some(b) => {
                        let close = matching(toks, b);
                        let inner = Ctx {
                            impl_type: type_name,
                            in_test: ctx.in_test,
                        };
                        parse_range(toks, b + 1, close, &inner, model);
                        i = close + 1;
                    }
                    None => i = end,
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                let is_test = ctx.in_test || attrs_mark_test_fn(&pending);
                pending.clear();
                let name = toks.get(i + 1).and_then(ident).unwrap_or("").to_string();
                let sig_line = toks[i].line;
                // Skip generics/args/return type to the body or the `;`
                // of a bodiless declaration. Argument parens may nest.
                let mut j = i + 2;
                let body = loop {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => {
                            j = matching(toks, j) + 1;
                        }
                        Some(Tok::Punct('{')) => break Some(j),
                        Some(Tok::Punct(';')) => break None,
                        Some(_) => j += 1,
                        None => break None,
                    }
                };
                match body {
                    Some(b) => {
                        let close = matching(toks, b);
                        if is_test && !ctx.in_test {
                            mark(&mut model.test_mask, i, close);
                        }
                        model.functions.push(Function {
                            name,
                            impl_type: ctx.impl_type.clone(),
                            sig_line,
                            body: (b + 1, close),
                            is_test,
                        });
                        let inner = Ctx {
                            impl_type: ctx.impl_type.clone(),
                            in_test: ctx.in_test || is_test,
                        };
                        parse_range(toks, b + 1, close, &inner, model);
                        i = close + 1;
                    }
                    None => i = j + 1,
                }
            }
            Tok::Ident(kw) if kw == "struct" => {
                let derives = derives_of(&pending);
                pending.clear();
                let name = toks.get(i + 1).and_then(ident).unwrap_or("").to_string();
                let line = toks[i].line;
                let mut def = StructDef {
                    name,
                    line,
                    fields: Vec::new(),
                    derives,
                    is_test: ctx.in_test,
                };
                match find_at_depth0(toks, i + 2, end, &['{', ';', '(']) {
                    Some(b) if is_punct(toks.get(b), '{') => {
                        let close = matching(toks, b);
                        def.fields = parse_fields(toks, b + 1, close);
                        i = close + 1;
                    }
                    Some(b) if is_punct(toks.get(b), '(') => {
                        // Tuple struct: skip payload and trailing `;`.
                        i = matching(toks, b) + 1;
                    }
                    Some(semi) => i = semi + 1,
                    None => i = end,
                }
                model.structs.push(def);
            }
            Tok::Ident(kw) if kw == "enum" => {
                let derives = derives_of(&pending);
                pending.clear();
                let name = toks.get(i + 1).and_then(ident).unwrap_or("").to_string();
                let line = toks[i].line;
                let mut def = EnumDef {
                    name,
                    line,
                    variants: Vec::new(),
                    derives,
                    is_test: ctx.in_test,
                };
                match find_at_depth0(toks, i + 2, end, &['{', ';']) {
                    Some(b) if is_punct(toks.get(b), '{') => {
                        let close = matching(toks, b);
                        def.variants = parse_fields(toks, b + 1, close);
                        i = close + 1;
                    }
                    Some(semi) => i = semi + 1,
                    None => i = end,
                }
                model.enums.push(def);
            }
            Tok::Ident(kw) if kw == "use" => {
                pending.clear();
                let semi = find_at_depth0(toks, i + 1, end, &[';']).unwrap_or(end - 1);
                mark(&mut model.use_mask, i, semi);
                i = semi + 1;
            }
            Tok::Ident(kw) if MODIFIERS.contains(&kw.as_str()) => {
                // Modifier between an attribute and its item: keep
                // `pending` alive. `pub(crate)` parens ride along via
                // the next iteration.
                i += 1;
            }
            Tok::Punct('(') | Tok::Punct('[') => {
                // e.g. the `(crate)` of `pub(crate)` — skip wholesale so
                // its contents are not mistaken for items.
                i = matching(toks, i) + 1;
            }
            _ => {
                pending.clear();
                i += 1;
            }
        }
    }
}

fn mark(mask: &mut [bool], from: usize, to_inclusive: usize) {
    for slot in mask
        .iter_mut()
        .skip(from)
        .take(to_inclusive.saturating_sub(from) + 1)
    {
        *slot = true;
    }
}

fn attrs_mark_test_cfg(pending: &[Vec<String>]) -> bool {
    pending
        .iter()
        .any(|a| a.iter().any(|s| s == "cfg") && a.iter().any(|s| s == "test"))
}

fn attrs_mark_test_fn(pending: &[Vec<String>]) -> bool {
    pending
        .iter()
        .any(|a| a.iter().any(|s| s == "test" || s == "bench"))
}

fn derives_of(pending: &[Vec<String>]) -> Vec<String> {
    let mut out = Vec::new();
    for attr in pending {
        if attr.first().map(String::as_str) == Some("derive") {
            out.extend(attr.iter().skip(1).cloned());
        }
    }
    out
}

/// Parses an `impl`/`trait` header starting after the keyword: returns
/// the implemented type name (last path ident at angle-depth 0 before
/// `where` or the body brace) and the body-brace index.
fn impl_header(toks: &[Token], start: usize, end: usize) -> (Option<String>, Option<usize>) {
    let mut angle = 0i32;
    let mut name: Option<String> = None;
    let mut frozen = false;
    let mut j = start;
    while j < end {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = (angle - 1).max(0),
            Tok::Punct('{') if angle == 0 => return (name, Some(j)),
            Tok::Punct(';') if angle == 0 => return (name, None),
            Tok::Punct('(') | Tok::Punct('[') => {
                j = matching(toks, j) + 1;
                continue;
            }
            Tok::Ident(s) if angle == 0 && !frozen => {
                if s == "where" {
                    frozen = true;
                } else if s == "dyn" || MODIFIERS.contains(&s.as_str()) {
                    // not a type name
                } else if s == "for" {
                    name = None; // the implemented type follows
                } else {
                    name = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (name, None)
}

/// Parses `name: Type,` / `Variant(payload),` lists inside struct/enum
/// braces. Returns `(name, line)` pairs. Skips attributes, visibility
/// and payload tokens.
fn parse_fields(toks: &[Token], start: usize, end: usize) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut j = start;
    while j < end {
        match &toks[j].tok {
            Tok::Punct('#') => {
                // Field/variant attribute.
                let mut k = j + 1;
                if is_punct(toks.get(k), '!') {
                    k += 1;
                }
                if is_punct(toks.get(k), '[') {
                    j = matching(toks, k) + 1;
                } else {
                    j = k;
                }
            }
            Tok::Ident(s) if MODIFIERS.contains(&s.as_str()) => {
                j += 1;
                if is_punct(toks.get(j), '(') {
                    j = matching(toks, j) + 1;
                }
            }
            Tok::Ident(name) => {
                out.push((name.clone(), toks[j].line));
                // Skip to the separating comma at depth 0. Types and
                // variant payloads nest every delimiter kind, including
                // generics — so commas inside `<...>` do not separate.
                let mut angle = 0i32;
                j += 1;
                while j < end {
                    match &toks[j].tok {
                        Tok::Punct(',') if angle == 0 => {
                            j += 1;
                            break;
                        }
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                            j = matching(toks, j);
                        }
                        Tok::Punct('<') => angle += 1,
                        // `->` in fn-pointer types is not a closer.
                        Tok::Punct('>') if !is_punct(toks.get(j.wrapping_sub(1)), '-') => {
                            angle = (angle - 1).max(0);
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => j += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        build(&lex(src))
    }

    #[test]
    fn functions_with_impl_context() {
        let m = model(
            "impl<T: Clone> Worker<T> {\n\
             \x20   pub fn run(&self) -> Result<(), E> { self.step() }\n\
             }\n\
             fn free_standing() {}\n\
             impl Display for Report { fn fmt(&self) {} }\n",
        );
        let names: Vec<_> = m
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("run", Some("Worker")),
                ("free_standing", None),
                ("fmt", Some("Report")),
            ]
        );
    }

    #[test]
    fn cfg_test_mods_and_test_fns_are_masked() {
        let m = model(
            "fn lib_code() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { y.unwrap(); }\n\
             }\n",
        );
        let lib = m.functions.iter().find(|f| f.name == "lib_code").unwrap();
        let t = m.functions.iter().find(|f| f.name == "t").unwrap();
        assert!(!lib.is_test);
        assert!(t.is_test);
        assert!(m.in_test(t.body.0));
        assert!(!m.in_test(lib.body.0));
    }

    #[test]
    fn standalone_test_fn_attr() {
        let m = model("#[test]\nfn alone() { panic!(\"boom\"); }\n");
        assert!(m.functions[0].is_test);
        assert!(m.in_test(m.functions[0].body.0));
    }

    #[test]
    fn struct_fields_and_derives() {
        let m = model(
            "#[derive(Debug, Clone)]\n\
             pub struct Settings {\n\
             \x20   pub precision: f64,\n\
             \x20   pub(crate) map: HashMap<String, Vec<u8>>,\n\
             \x20   #[serde(default)]\n\
             \x20   resume: bool,\n\
             }\n",
        );
        let s = &m.structs[0];
        assert_eq!(s.name, "Settings");
        assert_eq!(s.derives, vec!["Debug", "Clone"]);
        let fields: Vec<_> = s.fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(fields, vec!["precision", "map", "resume"]);
    }

    #[test]
    fn enum_variants_with_payloads() {
        let m = model(
            "pub enum StorageConfig {\n\
             \x20   Perfect,\n\
             \x20   Faulty { plan: Plan, defects: Vec<(u32, u32)> },\n\
             \x20   Ecc(Defects),\n\
             }\n",
        );
        let e = &m.enums[0];
        let variants: Vec<_> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(variants, vec!["Perfect", "Faulty", "Ecc"]);
    }

    #[test]
    fn forbid_unsafe_inner_attr() {
        assert!(model("#![forbid(unsafe_code)]\nfn f() {}\n").has_forbid_unsafe);
        assert!(!model("#![warn(missing_docs)]\nfn f() {}\n").has_forbid_unsafe);
    }

    #[test]
    fn use_statements_are_masked() {
        let m = model("use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}\n");
        let hash_idxs: Vec<usize> =
            lex("use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}\n")
                .tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(&t.tok, Tok::Ident(s) if s == "HashMap"))
                .map(|(i, _)| i)
                .collect();
        assert!(m.in_use(hash_idxs[0]));
        assert!(!m.in_use(hash_idxs[1]));
    }
}
