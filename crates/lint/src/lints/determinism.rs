//! Determinism contracts: `wallclock` and `hash-order`.
//!
//! The reproduction's headline guarantee is bit-identical campaign
//! manifests at any thread/shard/backend/chaos configuration. Two
//! ambient sources can silently break that: wall-clock reads feeding
//! simulation decisions, and randomized `HashMap`/`HashSet` iteration
//! order reaching bytes on disk.

use crate::annot::AnnKind;
use crate::config::{is_test_path, under_any, LintConfig};
use crate::diag::Diagnostic;
use crate::workspace::SourceFile;

/// Wall-clock / ambient-entropy sources the simulation layer must not
/// touch. `(pattern tokens, human name)`.
const CLOCK_PATHS: &[(&[&str], &str)] = &[
    (&["Instant", "now"], "Instant::now"),
    (&["SystemTime", "now"], "SystemTime::now"),
    (&["rand", "random"], "rand::random"),
];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

pub fn wallclock(cfg: &LintConfig, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if under_any(&file.rel, &cfg.wallclock_allow) || is_test_path(&file.rel) {
        return;
    }
    let hit = |file: &SourceFile, line: u32, what: &str, out: &mut Vec<Diagnostic>| {
        if !file.anns.has(line, &AnnKind::Wallclock) {
            out.push(Diagnostic::new(
                &file.rel,
                line,
                "wallclock",
                format!(
                    "`{what}` outside the allowlisted dispatch/telemetry layer — thread a \
                     seed or timestamp in from the caller, or annotate \
                     `// determinism: wallclock(<reason>)`"
                ),
            ));
        }
    };
    for i in 0..file.lexed.tokens.len() {
        if file.model.in_test(i) || file.model.in_use(i) {
            continue;
        }
        for (path, name) in CLOCK_PATHS {
            if file.ident_at(i) == Some(path[0])
                && file.path_sep_at(i + 1)
                && file.ident_at(i + 3) == Some(path[1])
            {
                hit(file, file.line_of(i), name, out);
            }
        }
        if let Some(id) = file.ident_at(i) {
            if ENTROPY_IDENTS.contains(&id) {
                hit(file, file.line_of(i), id, out);
            }
        }
    }
}

/// `HashMap`/`HashSet` in byte-identity-sensitive modules: iteration
/// order is randomized per process, so any use there must either move
/// to ordered containers or carry a written justification that its
/// order never reaches emitted bytes.
pub fn hash_order(cfg: &LintConfig, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !under_any(&file.rel, &cfg.order_sensitive) || is_test_path(&file.rel) {
        return;
    }
    for i in 0..file.lexed.tokens.len() {
        if file.model.in_test(i) || file.model.in_use(i) {
            continue;
        }
        let Some(ty @ ("HashMap" | "HashSet")) = file.ident_at(i) else {
            continue;
        };
        let line = file.line_of(i);
        if !file.anns.has(line, &AnnKind::UnorderedOk) {
            out.push(Diagnostic::new(
                &file.rel,
                line,
                "hash-order",
                format!(
                    "`{ty}` in a byte-identity-sensitive module: iteration order is \
                     randomized per process — use an ordered container or sort before \
                     emission, or annotate `// determinism: unordered-ok(<reason>)`"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn cfg() -> LintConfig {
        let mut cfg = LintConfig::bare(".");
        cfg.order_sensitive = vec![PathBuf::from("src")];
        cfg.wallclock_allow = vec![PathBuf::from("src/telemetry.rs")];
        cfg
    }

    fn wallclock_diags(rel: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::from_source(rel, src);
        let mut out = Vec::new();
        wallclock(&cfg(), &file, &mut out);
        out
    }

    #[test]
    fn instant_now_fires_outside_allowlist() {
        let out = wallclock_diags("src/engine.rs", "fn f() { let t = Instant::now(); }\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "wallclock");
    }

    #[test]
    fn allowlisted_file_is_exempt() {
        assert!(wallclock_diags("src/telemetry.rs", "fn f() { Instant::now(); }\n").is_empty());
    }

    #[test]
    fn string_mention_does_not_fire() {
        assert!(wallclock_diags("src/a.rs", "fn f() { log(\"Instant::now bad\"); }\n").is_empty());
    }

    #[test]
    fn ambient_entropy_fires() {
        let out = wallclock_diags("src/a.rs", "fn f() { let r = thread_rng(); }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("thread_rng"));
    }

    #[test]
    fn annotated_wallclock_is_exempt() {
        let src =
            "fn f() {\n // determinism: wallclock(stall watchdog only)\n Instant::now();\n}\n";
        assert!(wallclock_diags("src/a.rs", src).is_empty());
    }

    #[test]
    fn hash_order_flags_unannotated_maps() {
        let file = SourceFile::from_source(
            "src/store.rs",
            "use std::collections::HashMap;\n\
             struct S { m: HashMap<u8, u8> }\n\
             struct T {\n\
             \x20   // determinism: unordered-ok(keyed lookups only, never iterated)\n\
             \x20   n: HashMap<u8, u8>,\n\
             }\n",
        );
        let mut out = Vec::new();
        hash_order(&cfg(), &file, &mut out);
        // The `use` line and the annotated field are exempt; the bare
        // field fires.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }
}
