//! `identity-coverage`: every field of the campaign's point-identity
//! types must either enter the FNV fingerprint or carry a written
//! decision that it deliberately does not.
//!
//! The fingerprint functions render config with `format!`, so a field
//! is considered hashed when its name appears in a fingerprint function
//! body — as an identifier or a `{name...}` format placeholder. Types
//! hashed wholesale through `{:?}` ("debug-hashed") must derive `Debug`
//! and must not carry a manual `Debug` impl that could skip fields.

use std::collections::BTreeSet;

use crate::annot::AnnKind;
use crate::config::{IdentityMode, LintConfig};
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::workspace::Workspace;

pub fn check(cfg: &LintConfig, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(fp_rel) = &cfg.fingerprint_file else {
        return;
    };
    let Some(fp) = ws.file(fp_rel) else {
        out.push(Diagnostic::new(
            fp_rel,
            1,
            "identity-coverage",
            "configured fingerprint file not found in workspace",
        ));
        return;
    };

    // Everything a fingerprint function body mentions counts as hashed.
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut found_fn = false;
    for func in &fp.model.functions {
        if !cfg.fingerprint_fns.contains(&func.name) {
            continue;
        }
        found_fn = true;
        for t in &fp.lexed.tokens[func.body.0..func.body.1] {
            match &t.tok {
                Tok::Ident(s) => {
                    covered.insert(s.clone());
                }
                Tok::Str(s) => format_names(s, &mut covered),
                _ => {}
            }
        }
    }
    if !found_fn {
        out.push(Diagnostic::new(
            fp_rel,
            1,
            "identity-coverage",
            format!(
                "none of the fingerprint functions ({}) found — identity coverage cannot \
                 be checked",
                cfg.fingerprint_fns.join(", ")
            ),
        ));
        return;
    }

    for spec in &cfg.identity_structs {
        check_type(cfg, ws, spec, &covered, fp_rel, out);
    }
}

fn check_type(
    cfg: &LintConfig,
    ws: &Workspace,
    spec: &crate::config::IdentityStruct,
    covered: &BTreeSet<String>,
    fp_rel: &std::path::Path,
    out: &mut Vec<Diagnostic>,
) {
    let mut found = false;
    for file in &ws.files {
        let strukt = file
            .model
            .structs
            .iter()
            .find(|s| s.name == spec.name && !s.is_test);
        let enom = file
            .model
            .enums
            .iter()
            .find(|e| e.name == spec.name && !e.is_test);
        let (line, derives) = match (strukt, enom) {
            (Some(s), _) => (s.line, &s.derives),
            (None, Some(e)) => (e.line, &e.derives),
            (None, None) => continue,
        };
        found = true;
        match spec.mode {
            IdentityMode::TokenCoverage => {
                let Some(s) = strukt else {
                    out.push(Diagnostic::new(
                        &file.rel,
                        line,
                        "identity-coverage",
                        format!("identity type `{}` expected to be a struct", spec.name),
                    ));
                    continue;
                };
                for (field, fline) in &s.fields {
                    if covered.contains(field)
                        || file.anns.has(*fline, &AnnKind::IdentityExcluded)
                        || file.anns.has(*fline, &AnnKind::IdentityHashed)
                    {
                        continue;
                    }
                    out.push(Diagnostic::new(
                        &file.rel,
                        *fline,
                        "identity-coverage",
                        format!(
                            "field `{}` of `{}` is neither hashed by the fingerprint \
                             functions ({}) nor annotated `// identity: excluded(<reason>)` \
                             / `// identity: hashed(<reason>)`",
                            field,
                            spec.name,
                            cfg.fingerprint_fns.join("/")
                        ),
                    ));
                }
            }
            IdentityMode::DebugHashed => {
                if !derives.iter().any(|d| d == "Debug") {
                    out.push(Diagnostic::new(
                        &file.rel,
                        line,
                        "identity-coverage",
                        format!(
                            "identity type `{}` is hashed through its `{{:?}}` repr but \
                             does not derive `Debug`",
                            spec.name
                        ),
                    ));
                }
                manual_debug_impls(ws, &spec.name, out);
            }
        }
    }
    if !found {
        out.push(Diagnostic::new(
            fp_rel,
            1,
            "identity-coverage",
            format!("identity type `{}` not found in workspace", spec.name),
        ));
    }
}

/// A hand-written `Debug` impl on a debug-hashed type could silently
/// drop fields from the fingerprint; the derive formats all of them.
fn manual_debug_impls(ws: &Workspace, type_name: &str, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        for i in 0..file.lexed.tokens.len() {
            if file.model.in_test(i) {
                continue;
            }
            if file.ident_at(i) == Some("Debug")
                && file.ident_at(i + 1) == Some("for")
                && file.ident_at(i + 2) == Some(type_name)
            {
                out.push(Diagnostic::new(
                    &file.rel,
                    file.line_of(i),
                    "identity-coverage",
                    format!(
                        "manual `Debug` impl for identity type `{type_name}` — the \
                         fingerprint hashes its `{{:?}}` repr, which must come from \
                         `#[derive(Debug)]` so every field is covered"
                    ),
                ));
            }
        }
    }
}

/// Collects `{name...}` format-capture identifiers from a format
/// string: `"v{VERSION}|{cfg:?}|seed={seed:016x}"` yields `VERSION`,
/// `cfg`, `seed`.
fn format_names(s: &str, into: &mut BTreeSet<String>) {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'{' {
            i += 1;
            continue;
        }
        if b.get(i + 1) == Some(&b'{') {
            i += 2; // escaped brace
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j > start && !b[start].is_ascii_digit() {
            into.insert(s[start..j].to_string());
        }
        i = j.max(i + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdentityStruct;

    const HASH_RS: &str = "\
        pub fn fingerprint(cfg: &Cfg, snr_db: f64, seed: u64) -> String {\n\
            format!(\"v1|{cfg:?}|snr={:016x}|seed={seed}\", snr_db.to_bits())\n\
        }\n";

    fn cfg() -> LintConfig {
        let mut cfg = LintConfig::bare(".");
        cfg.fingerprint_file = Some("hash.rs".into());
        cfg.fingerprint_fns = vec!["fingerprint".into()];
        cfg.identity_structs = vec![IdentityStruct {
            name: "Point".into(),
            mode: IdentityMode::TokenCoverage,
        }];
        cfg
    }

    fn diags(point_src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(&[("hash.rs", HASH_RS), ("point.rs", point_src)]);
        let mut out = Vec::new();
        check(&cfg(), &ws, &mut out);
        out
    }

    #[test]
    fn hashed_and_format_captured_fields_pass() {
        // `seed` via format capture, `snr_db` via body identifier.
        assert!(diags("struct Point { seed: u64, snr_db: f64 }\n").is_empty());
    }

    #[test]
    fn uncovered_field_fires() {
        let out = diags("struct Point { seed: u64, label: String }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("label"));
    }

    #[test]
    fn annotated_field_passes() {
        let src = "struct Point {\n\
                   \x20   seed: u64,\n\
                   \x20   // identity: excluded(display only, never keys the store)\n\
                   \x20   label: String,\n\
                   }\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn debug_hashed_requires_derive_and_no_manual_impl() {
        let mut c = cfg();
        c.identity_structs = vec![IdentityStruct {
            name: "Cfg".into(),
            mode: IdentityMode::DebugHashed,
        }];
        let ws = Workspace::from_sources(&[
            ("hash.rs", HASH_RS),
            (
                "cfg.rs",
                "#[derive(Debug, Clone)]\nstruct Cfg { bits: u8 }\n",
            ),
        ]);
        let mut out = Vec::new();
        check(&c, &ws, &mut out);
        assert!(out.is_empty());

        let ws = Workspace::from_sources(&[
            ("hash.rs", HASH_RS),
            (
                "cfg.rs",
                "#[derive(Clone)]\nstruct Cfg { bits: u8 }\n\
                 impl fmt::Debug for Cfg { fn fmt(&self) {} }\n",
            ),
        ]);
        out.clear();
        check(&c, &ws, &mut out);
        assert_eq!(out.len(), 2, "missing derive + manual impl: {out:?}");
    }

    #[test]
    fn missing_struct_is_reported() {
        let ws = Workspace::from_sources(&[("hash.rs", HASH_RS)]);
        let mut out = Vec::new();
        check(&cfg(), &ws, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not found"));
    }
}
