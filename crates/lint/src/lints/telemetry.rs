//! `telemetry-catalog`: the metric catalog must stay closed and live.
//!
//! The compiler enforces that `name()` matches every variant, but the
//! manual `ALL` arrays driving exposition are just data — a variant
//! missing there silently disappears from every snapshot dump. And a
//! variant nothing increments is a dead metric that dashboards will
//! chart as an eternal zero. Both are catalog drift this lint catches,
//! plus: structured-event names passed to `emit` must be string
//! literals so the event vocabulary stays greppable.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::workspace::Workspace;

pub fn check(cfg: &LintConfig, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(tc) = &cfg.telemetry else {
        return;
    };
    let Some(tf) = ws.file(&tc.file) else {
        out.push(Diagnostic::new(
            &tc.file,
            1,
            "telemetry-catalog",
            "configured telemetry file not found in workspace",
        ));
        return;
    };

    // `const ALL: [Ty; N] = [...]` catalogs in the telemetry file.
    let mut catalogs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let toks = &tf.lexed.tokens;
    for i in 0..toks.len() {
        if tf.ident_at(i) != Some("const")
            || tf.ident_at(i + 1) != Some("ALL")
            || !tf.punct_at(i + 2, ':')
            || !tf.punct_at(i + 3, '[')
        {
            continue;
        }
        let Some(ty) = tf.ident_at(i + 4) else {
            continue;
        };
        // Skip to the initializer bracket and collect its identifiers.
        let mut j = i + 5;
        while j < toks.len() && !tf.punct_at(j, '=') {
            j += 1;
        }
        let entry = catalogs.entry(ty.to_string()).or_default();
        let mut depth = 0i32;
        for t in &toks[j..] {
            match &t.tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) if depth > 0 => {
                    entry.insert(s.clone());
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
        }
    }

    // Every `Enum::Variant` path mentioned anywhere else in the tree.
    let mut referenced: BTreeSet<(String, String)> = BTreeSet::new();
    for file in &ws.files {
        if file.rel == tf.rel {
            continue;
        }
        for i in 0..file.lexed.tokens.len() {
            let Some(e) = file.ident_at(i) else { continue };
            if !tc.enums.iter().any(|n| n == e) {
                continue;
            }
            if file.path_sep_at(i + 1) {
                if let Some(v) = file.ident_at(i + 3) {
                    referenced.insert((e.to_string(), v.to_string()));
                }
            }
        }
    }

    for enum_name in &tc.enums {
        let Some(e) = tf
            .model
            .enums
            .iter()
            .find(|e| e.name == *enum_name && !e.is_test)
        else {
            out.push(Diagnostic::new(
                &tf.rel,
                1,
                "telemetry-catalog",
                format!("metric enum `{enum_name}` not found in telemetry file"),
            ));
            continue;
        };
        let catalog = catalogs.get(enum_name);
        if catalog.is_none() {
            out.push(Diagnostic::new(
                &tf.rel,
                e.line,
                "telemetry-catalog",
                format!("no `const ALL` catalog found for metric enum `{enum_name}`"),
            ));
        }
        for (variant, line) in &e.variants {
            if let Some(cat) = catalog {
                if !cat.contains(variant) {
                    out.push(Diagnostic::new(
                        &tf.rel,
                        *line,
                        "telemetry-catalog",
                        format!(
                            "`{enum_name}::{variant}` is missing from `{enum_name}::ALL` — \
                             exposition would silently skip it"
                        ),
                    ));
                }
            }
            if !referenced.contains(&(enum_name.clone(), variant.clone())) {
                out.push(Diagnostic::new(
                    &tf.rel,
                    *line,
                    "telemetry-catalog",
                    format!(
                        "`{enum_name}::{variant}` is never referenced outside the catalog \
                         — dead metric; wire it up or remove it"
                    ),
                ));
            }
        }
    }

    // Structured-event names must be literal: `.emit("name", ...)`.
    for file in &ws.files {
        for i in 0..file.lexed.tokens.len() {
            if !file.punct_at(i, '.')
                || file.ident_at(i + 1) != Some("emit")
                || !file.punct_at(i + 2, '(')
            {
                continue;
            }
            let arg_is_literal = matches!(
                file.lexed.tokens.get(i + 3).map(|t| &t.tok),
                Some(Tok::Str(_))
            );
            if !arg_is_literal {
                out.push(Diagnostic::new(
                    &file.rel,
                    file.line_of(i + 1),
                    "telemetry-catalog",
                    "event name passed to `emit` must be a string literal so the event \
                     vocabulary stays greppable",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TelemetryConfig;

    fn cfg() -> LintConfig {
        let mut cfg = LintConfig::bare(".");
        cfg.telemetry = Some(TelemetryConfig {
            file: "telemetry.rs".into(),
            enums: vec!["Counter".into()],
        });
        cfg
    }

    const GOOD_CATALOG: &str = "\
        pub enum Counter { Hits, Misses }\n\
        impl Counter {\n\
        \x20   pub const ALL: [Counter; 2] = [Counter::Hits, Counter::Misses];\n\
        }\n";

    #[test]
    fn complete_and_referenced_catalog_passes() {
        let ws = Workspace::from_sources(&[
            ("telemetry.rs", GOOD_CATALOG),
            (
                "user.rs",
                "fn f() { add(Counter::Hits); add(Counter::Misses); }\n",
            ),
        ]);
        let mut out = Vec::new();
        check(&cfg(), &ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn variant_missing_from_all_fires() {
        let src = "\
            pub enum Counter { Hits, Misses }\n\
            impl Counter {\n\
            \x20   pub const ALL: [Counter; 1] = [Counter::Hits];\n\
            }\n";
        let ws = Workspace::from_sources(&[
            ("telemetry.rs", src),
            (
                "user.rs",
                "fn f() { add(Counter::Hits); add(Counter::Misses); }\n",
            ),
        ]);
        let mut out = Vec::new();
        check(&cfg(), &ws, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("missing from"));
    }

    #[test]
    fn unreferenced_variant_fires() {
        let ws = Workspace::from_sources(&[
            ("telemetry.rs", GOOD_CATALOG),
            ("user.rs", "fn f() { add(Counter::Hits); }\n"),
        ]);
        let mut out = Vec::new();
        check(&cfg(), &ws, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("never referenced"));
    }

    #[test]
    fn non_literal_event_name_fires() {
        let ws = Workspace::from_sources(&[
            ("telemetry.rs", GOOD_CATALOG),
            (
                "user.rs",
                "fn f(log: &Log, which: &str) {\n\
                 \x20   add(Counter::Hits); add(Counter::Misses);\n\
                 \x20   log.emit(which, &[]);\n\
                 \x20   log.emit(\"merge\", &[]);\n\
                 }\n",
            ),
        ]);
        let mut out = Vec::new();
        check(&cfg(), &ws, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }
}
