//! The lint passes. Each submodule owns one contract family; `run_all`
//! drives them over a loaded workspace and returns sorted, deduplicated
//! diagnostics.

pub mod alloc;
pub mod determinism;
pub mod hygiene;
pub mod identity;
pub mod telemetry;

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// Keywords that can be followed by `(` without being a call.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "let", "move", "fn",
    "where", "impl", "dyn", "pub", "crate", "super", "self", "Self", "mut", "ref", "break",
    "continue", "unsafe", "const", "static", "type", "use", "mod", "struct", "enum", "trait",
];

pub fn run_all(cfg: &LintConfig, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        for (line, msg) in &file.anns.problems {
            out.push(Diagnostic::new(&file.rel, *line, "annotation-syntax", msg));
        }
        hygiene::no_unwrap_no_panic(cfg, file, out);
        hygiene::unsafe_blocks(file, out);
        determinism::wallclock(cfg, file, out);
        determinism::hash_order(cfg, file, out);
    }
    hygiene::forbid_unsafe_attrs(cfg, ws, out);
    identity::check(cfg, ws, out);
    alloc::check(cfg, ws, out);
    telemetry::check(cfg, ws, out);
    out.sort();
    out.dedup();
}
