//! `hot-path-alloc`: the static complement to `tests/alloc_regression.rs`.
//!
//! Walks the call graph from the decode hot-path roots
//! (`simulate_packet_with`, `simulate_wave_with`, `decode_batch`) and
//! flags heap-allocating expressions in every reachable function unless
//! the line — or the whole function, via an annotation on its `fn`
//! signature — is marked `// alloc: cold(<reason>)`.
//!
//! Resolution is name-based and deliberately conservative: qualified
//! calls (`Type::func`) resolve through their impl block; bare-name
//! calls resolve to every workspace function of that name *except* for
//! ubiquitous std-like method names, which would connect everything to
//! everything. Allocation sites those misses might hide are still
//! caught wherever the walk does reach, and the runtime allocation
//! regression test backstops the rest.

use std::collections::{BTreeMap, BTreeSet};

use crate::annot::AnnKind;
use crate::config::{is_test_path, under_any, LintConfig};
use crate::diag::Diagnostic;
use crate::lints::KEYWORDS;
use crate::workspace::{SourceFile, Workspace};

/// Method/function names too common to resolve by bare name.
const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "collect",
    "extend",
    "write",
    "write_all",
    "read",
    "flush",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "hash",
    "drop",
    "from",
    "into",
    "try_from",
    "try_into",
    "to_string",
    "to_vec",
    "to_owned",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "min",
    "max",
    "abs",
    "sum",
    "clamp",
    "contains",
    "contains_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "drain",
    "clear",
    "take",
    "get_or_insert_with",
    "set",
    "send",
    "recv",
    "join",
    "lock",
    "load",
    "store",
    "open",
    "close",
    "run",
    "main",
    "build",
    "with_capacity",
    "reserve",
    "split",
    "filter",
    "fold",
    "zip",
    "enumerate",
    "rev",
    "chain",
    "count",
    "position",
    "find",
    "any",
    "all",
    "name",
    "fill",
    "copy_from_slice",
    "swap",
    "resize",
    "truncate",
    "last",
    "first",
];

/// Heap-allocating `Type::func` paths.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
/// Heap-allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Heap-allocating (or heap-cloning) method calls.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "clone"];

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FnRef {
    file: usize,
    func: usize,
}

pub fn check(cfg: &LintConfig, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    if cfg.hot_path_roots.is_empty() {
        return;
    }

    // Function index: bare name and `Type::name`.
    let mut by_name: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
    let mut by_qual: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if is_test_path(&file.rel) {
            continue;
        }
        if !cfg.hot_path_scope.is_empty() && !under_any(&file.rel, &cfg.hot_path_scope) {
            continue;
        }
        for (gi, func) in file.model.functions.iter().enumerate() {
            if func.is_test || func.name.is_empty() {
                continue;
            }
            let r = FnRef { file: fi, func: gi };
            by_name.entry(&func.name).or_default().push(r);
            if let Some(ty) = &func.impl_type {
                by_qual
                    .entry(format!("{ty}::{}", func.name))
                    .or_default()
                    .push(r);
            }
        }
    }

    let mut queue: Vec<(FnRef, Vec<String>)> = Vec::new();
    for root in &cfg.hot_path_roots {
        for &r in by_name.get(root.as_str()).into_iter().flatten() {
            queue.push((r, vec![root.clone()]));
        }
    }

    let mut visited: BTreeSet<FnRef> = BTreeSet::new();
    let mut reported: BTreeSet<(usize, u32)> = BTreeSet::new();
    while let Some((r, chain)) = queue.pop() {
        if !visited.insert(r) {
            continue;
        }
        let file = &ws.files[r.file];
        let func = &file.model.functions[r.func];
        // A fn-level `alloc: cold` prunes the whole subtree: the
        // function is declared off the hot path.
        if file.anns.has(func.sig_line, &AnnKind::AllocCold) {
            continue;
        }
        scan_body(
            cfg,
            file,
            r,
            func,
            &chain,
            &by_name,
            &by_qual,
            &mut queue,
            &mut reported,
            out,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_body(
    _cfg: &LintConfig,
    file: &SourceFile,
    r: FnRef,
    func: &crate::model::Function,
    chain: &[String],
    by_name: &BTreeMap<&str, Vec<FnRef>>,
    by_qual: &BTreeMap<String, Vec<FnRef>>,
    queue: &mut Vec<(FnRef, Vec<String>)>,
    reported: &mut BTreeSet<(usize, u32)>,
    out: &mut Vec<Diagnostic>,
) {
    let (start, end) = func.body;
    for i in start..end {
        // Allocation sites.
        let alloc: Option<String> = if let Some(ty) = file.ident_at(i) {
            if file.path_sep_at(i + 1) {
                let method = file.ident_at(i + 3);
                ALLOC_PATHS
                    .iter()
                    .find(|(t, m)| *t == ty && Some(*m) == method)
                    .map(|(t, m)| format!("{t}::{m}"))
            } else if file.punct_at(i + 1, '!') && ALLOC_MACROS.contains(&ty) {
                Some(format!("{ty}!"))
            } else {
                None
            }
        } else if file.punct_at(i, '.') && file.punct_at(i + 2, '(') {
            file.ident_at(i + 1)
                .filter(|m| ALLOC_METHODS.contains(m))
                .map(|m| format!(".{m}()"))
        } else {
            None
        };
        if let Some(what) = alloc {
            let line = file.line_of(i);
            if !file.anns.has(line, &AnnKind::AllocCold) && reported.insert((r.file, line)) {
                out.push(Diagnostic::new(
                    &file.rel,
                    line,
                    "hot-path-alloc",
                    format!(
                        "`{what}` in `{}`, reachable from the decode hot path ({}) — hoist \
                         the allocation into setup, or annotate \
                         `// alloc: cold(<reason>)`",
                        func.name,
                        render_chain(chain),
                    ),
                ));
            }
        }

        // Call edges.
        let Some(name) = file.ident_at(i) else {
            continue;
        };
        if !file.punct_at(i + 1, '(') || KEYWORDS.contains(&name) {
            continue;
        }
        let next_chain = || {
            let mut c = chain.to_vec();
            c.push(name.to_string());
            c
        };
        // `Qual::name(...)` — resolve through the impl index only.
        if i >= 3 && file.path_sep_at(i - 2) {
            if let Some(qual) = file.ident_at(i - 3) {
                if let Some(refs) = by_qual.get(&format!("{qual}::{name}")) {
                    for &callee in refs {
                        queue.push((callee, next_chain()));
                    }
                    continue;
                }
                if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // A type we did not index (std, shims): no edge.
                    continue;
                }
                // Module-qualified (`hash::fnv1a64`): fall through to
                // bare-name resolution.
            }
        }
        if STOPLIST.contains(&name) {
            continue;
        }
        for &callee in by_name.get(name).into_iter().flatten() {
            queue.push((callee, next_chain()));
        }
    }
}

fn render_chain(chain: &[String]) -> String {
    const MAX: usize = 6;
    if chain.len() <= MAX {
        chain.join(" → ")
    } else {
        format!(
            "{} → … → {}",
            chain[..2].join(" → "),
            chain[chain.len() - 2..].join(" → ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        let mut cfg = LintConfig::bare(".");
        cfg.hot_path_roots = vec!["simulate_packet_with".into()];
        cfg
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(&[("src/lib.rs", src)]);
        let mut out = Vec::new();
        check(&cfg(), &ws, &mut out);
        out
    }

    #[test]
    fn direct_allocation_in_root_fires() {
        let out = diags("fn simulate_packet_with() { let v = Vec::new(); }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Vec::new"));
    }

    #[test]
    fn allocation_in_callee_fires_with_chain() {
        let out = diags(
            "fn simulate_packet_with() { step(); }\n\
             fn step() { inner(); }\n\
             fn inner() { let s = format!(\"x{}\", 1); }\n",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0]
            .message
            .contains("simulate_packet_with → step → inner"));
    }

    #[test]
    fn unreachable_allocation_is_ignored() {
        assert!(diags("fn setup() { let v = vec![0u8; 64]; }\n").is_empty());
    }

    #[test]
    fn line_annotation_silences() {
        let src = "fn simulate_packet_with() {\n\
                   \x20   // alloc: cold(error path only)\n\
                   \x20   let v = Vec::new();\n\
                   }\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn fn_annotation_prunes_subtree() {
        let src = "fn simulate_packet_with() { report(); }\n\
                   // alloc: cold(diagnostics, runs once per campaign)\n\
                   fn report() { helper(); }\n\
                   fn helper() { let v = Vec::new(); }\n";
        // `helper` is only reachable through the pruned `report`.
        assert!(diags(src).is_empty());
    }

    #[test]
    fn qualified_calls_resolve_through_impls() {
        let out = diags(
            "fn simulate_packet_with() { Decoder::prepare(); }\n\
             struct Decoder;\n\
             impl Decoder { fn prepare() { let b = Box::new(0u8); } }\n",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Box::new"));
    }

    #[test]
    fn stoplisted_bare_names_do_not_connect() {
        // `new` is too common to resolve by bare name: the allocation
        // inside an unrelated constructor must not be attributed to the
        // hot path through it.
        let out = diags(
            "fn simulate_packet_with() { let x = new(); }\n\
             struct Other;\n\
             impl Other { fn new() { let v = Vec::new(); } }\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn test_functions_are_not_roots() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   \x20   fn simulate_packet_with() { let v = Vec::new(); }\n\
                   }\n";
        assert!(diags(src).is_empty());
    }
}
