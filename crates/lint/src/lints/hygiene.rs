//! Error and unsafe hygiene: `no-unwrap`, `no-panic`, `unsafe-hygiene`.

use crate::annot::AnnKind;
use crate::config::{is_test_path, under_any, LintConfig};
use crate::diag::Diagnostic;
use crate::workspace::{SourceFile, Workspace};

/// `.unwrap()` / `.expect(` / `panic!` are forbidden in hardened
/// library code (campaign paths): convert to contextual errors, or
/// annotate the provably-infallible remainder.
pub fn no_unwrap_no_panic(cfg: &LintConfig, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !under_any(&file.rel, &cfg.hardened) || is_test_path(&file.rel) {
        return;
    }
    for i in 0..file.lexed.tokens.len() {
        if file.model.in_test(i) {
            continue;
        }
        if file.punct_at(i, '.') && file.punct_at(i + 2, '(') {
            if let Some(m @ ("unwrap" | "expect")) = file.ident_at(i + 1) {
                let line = file.line_of(i + 1);
                if !file.anns.allows(line, "no-unwrap") {
                    out.push(Diagnostic::new(
                        &file.rel,
                        line,
                        "no-unwrap",
                        format!(
                            "`.{m}()` in hardened library code — return a contextual error, \
                             or annotate `// lint: allow(no-unwrap, <reason>)` if provably \
                             infallible"
                        ),
                    ));
                }
            }
        }
        if file.ident_at(i) == Some("panic") && file.punct_at(i + 1, '!') {
            let line = file.line_of(i);
            if !file.anns.allows(line, "no-panic") {
                out.push(Diagnostic::new(
                    &file.rel,
                    line,
                    "no-panic",
                    "`panic!` in hardened library code — return a contextual error, or \
                     annotate `// lint: allow(no-panic, <reason>)` for a deliberate fatal \
                     exit",
                ));
            }
        }
    }
}

/// Every `unsafe` token needs a `// SAFETY:` justification on the same
/// line or in the comment block directly above.
pub fn unsafe_blocks(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..file.lexed.tokens.len() {
        if file.ident_at(i) != Some("unsafe") || file.model.in_use(i) {
            continue;
        }
        let line = file.line_of(i);
        if !file.anns.has(line, &AnnKind::Safety) {
            out.push(Diagnostic::new(
                &file.rel,
                line,
                "unsafe-hygiene",
                "`unsafe` without a `// SAFETY:` justification",
            ));
        }
    }
}

/// The configured crate roots must pin the no-unsafe status of their
/// whole crate with `#![forbid(unsafe_code)]`.
pub fn forbid_unsafe_attrs(cfg: &LintConfig, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for rel in &cfg.forbid_unsafe_crates {
        match ws.file(rel) {
            Some(f) if f.model.has_forbid_unsafe => {}
            Some(_) => out.push(Diagnostic::new(
                rel,
                1,
                "unsafe-hygiene",
                "crate root is required to carry `#![forbid(unsafe_code)]`",
            )),
            None => out.push(Diagnostic::new(
                rel,
                1,
                "unsafe-hygiene",
                "configured crate root not found in workspace",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;
    use std::path::PathBuf;

    fn hardened_cfg() -> LintConfig {
        let mut cfg = LintConfig::bare(".");
        cfg.hardened = vec![PathBuf::from("src")];
        cfg
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::from_source("src/lib.rs", src);
        let mut out = Vec::new();
        no_unwrap_no_panic(&hardened_cfg(), &file, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_fire() {
        let out = diags("fn f() { x.unwrap(); y.expect(\"msg\"); }\n");
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.lint == "no-unwrap"));
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        assert!(diags("fn f() { x.unwrap_or(0); x.unwrap_or_default(); }\n").is_empty());
    }

    #[test]
    fn annotated_unwrap_is_allowed() {
        let out = diags("fn f() { x.unwrap(); // lint: allow(no-unwrap, len checked)\n }\n");
        assert!(out.is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let out = diags("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(\"b\"); }\n}\n");
        assert!(out.is_empty());
    }

    #[test]
    fn panic_fires_and_annotation_silences() {
        assert_eq!(diags("fn f() { panic!(\"boom\"); }\n").len(), 1);
        assert!(diags(
            "fn f() {\n // lint: allow(no-panic, fatal by design)\n panic!(\"boom\");\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let file = SourceFile::from_source("src/lib.rs", "fn f() { unsafe { g() } }\n");
        let mut out = Vec::new();
        unsafe_blocks(&file, &mut out);
        assert_eq!(out.len(), 1);

        let ok = SourceFile::from_source(
            "src/lib.rs",
            "fn f() {\n // SAFETY: g has no preconditions\n unsafe { g() }\n}\n",
        );
        out.clear();
        unsafe_blocks(&ok, &mut out);
        assert!(out.is_empty());
    }
}
