//! A lightweight Rust lexer — just enough structure for contract
//! linting: identifiers, punctuation, literals and comments, each tagged
//! with its 1-based source line.
//!
//! The lexer deliberately does **not** build an AST. Every lint in this
//! crate works on token patterns plus a shallow item model
//! ([`crate::model`]), which keeps the linter dependency-free (no `syn`,
//! no registry access) and fast enough to run on every push.
//!
//! What it must get right, because the lints depend on it:
//!
//! * comments are stripped from the token stream but **recorded** with
//!   their lines — annotations (`// identity: excluded(...)`,
//!   `// SAFETY: ...`) live in comments;
//! * string literals (including raw strings) are recorded as single
//!   [`Tok::Str`] tokens so `Instant::now` inside an error message never
//!   trips the determinism lint, while the telemetry lint can still see
//!   event-name literals;
//! * `'a'` (char) is distinguished from `'a` (lifetime).

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct(char),
    /// String literal — the *contents*, escapes left as written.
    Str(String),
    /// Character or byte literal (contents irrelevant to the lints).
    Char,
    /// Lifetime (without the leading `'`).
    Lifetime(String),
    /// Numeric literal, as written.
    Num(String),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment with the 1-based line it starts on. Block comments keep
/// their full text; the annotation parser scans per-line.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// For every 1-based line: does any code token start on it? Lines
    /// holding only comments/whitespace stay `false` — the annotation
    /// attachment walk uses this to find the comment block above an
    /// item.
    pub code_lines: Vec<bool>,
    /// Total line count.
    pub lines: u32,
}

impl Lexed {
    /// Whether 1-based `line` holds any code token.
    pub fn is_code_line(&self, line: u32) -> bool {
        self.code_lines.get(line as usize).copied().unwrap_or(false)
    }
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed {
        lines: src.lines().count() as u32,
        ..Lexed::default()
    };
    out.code_lines = vec![false; out.lines as usize + 2];
    let mut i = 0usize;
    let mut line = 1u32;

    let push = |out: &mut Lexed, tok: Tok, line: u32| {
        if let Some(slot) = out.code_lines.get_mut(line as usize) {
            *slot = true;
        }
        out.tokens.push(Token { tok, line });
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..j].to_string(),
                });
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, per Rust.
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].to_string(),
                });
                i = j;
            }
            '"' => {
                let (s, consumed, newlines) = lex_string(&src[i..]);
                push(&mut out, Tok::Str(s), line);
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if starts_raw_or_byte_string(&src[i..]) => {
                let (tok, consumed, newlines) = lex_prefixed_string(&src[i..]);
                push(&mut out, tok, line);
                line += newlines;
                i += consumed;
            }
            '\'' => {
                let (tok, consumed) = lex_quote(&src[i..]);
                push(&mut out, tok, line);
                i += consumed;
            }
            c if c.is_ascii_digit() => {
                let (n, consumed) = lex_number(&src[i..]);
                push(&mut out, Tok::Num(n), line);
                i += consumed;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = bytes[j] as char;
                    if ch.is_alphanumeric() || ch == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                push(&mut out, Tok::Ident(src[i..j].to_string()), line);
                i = j;
            }
            c => {
                push(&mut out, Tok::Punct(c), line);
                i += 1;
            }
        }
    }
    out
}

/// Does `rest` (starting with `r` or `b`) open a raw/byte string rather
/// than an identifier like `r#raw_ident` or plain `radius`?
fn starts_raw_or_byte_string(rest: &str) -> bool {
    let b = rest.as_bytes();
    match b[0] {
        b'r' => {
            // r"..." or r#"..."# (any number of #).
            let mut j = 1;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            // r#ident is a raw identifier, which has no quote after the #.
            b.get(j) == Some(&b'"')
        }
        b'b' => match b.get(1) {
            Some(b'"') => true,
            Some(b'\'') => true,
            Some(b'r') => {
                let mut j = 2;
                while b.get(j) == Some(&b'#') {
                    j += 1;
                }
                b.get(j) == Some(&b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Lexes a plain `"..."` string starting at `rest[0] == '"'`. Returns
/// (contents, bytes consumed, newlines crossed).
fn lex_string(rest: &str) -> (String, usize, u32) {
    let b = rest.as_bytes();
    let mut j = 1;
    let mut newlines = 0;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                // A line-continuation escape (`\` at end of line) still
                // crosses a newline — losing it would shift every
                // diagnostic below the string.
                if b.get(j + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => {
                return (rest[1..j].to_string(), j + 1, newlines);
            }
            _ => j += 1,
        }
    }
    (rest[1..].to_string(), b.len(), newlines)
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` starting at
/// `rest[0]`. Returns (token, bytes consumed, newlines crossed).
fn lex_prefixed_string(rest: &str) -> (Tok, usize, u32) {
    let b = rest.as_bytes();
    let mut j = 0;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        // Byte char literal b'x'.
        let (_, consumed) = lex_quote(&rest[j..]);
        return (Tok::Char, j + consumed, 0);
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    j += 1;
    let start = j;
    let mut newlines = 0;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if !raw && b[j] == b'\\' {
            if b.get(j + 1) == Some(&b'\n') {
                newlines += 1;
            }
            j += 2;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (Tok::Str(rest[start..j].to_string()), k, newlines);
            }
        }
        j += 1;
    }
    (Tok::Str(rest[start..].to_string()), b.len(), newlines)
}

/// Lexes a `'`-introduced token: char literal or lifetime. Returns
/// (token, bytes consumed).
fn lex_quote(rest: &str) -> (Tok, usize) {
    let b = rest.as_bytes();
    match b.get(1) {
        Some(b'\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = 2;
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            (Tok::Char, (j + 1).min(b.len()))
        }
        Some(&c) if (c as char).is_alphanumeric() || c == b'_' => {
            if b.get(2) == Some(&b'\'') {
                // 'a'
                (Tok::Char, 3)
            } else {
                // 'lifetime
                let mut j = 1;
                while j < b.len() {
                    let ch = b[j] as char;
                    if ch.is_alphanumeric() || ch == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                (Tok::Lifetime(rest[1..j].to_string()), j)
            }
        }
        Some(&c) => {
            // Punctuation char like '(' — expect closing quote.
            let _ = c;
            if b.get(2) == Some(&b'\'') {
                (Tok::Char, 3)
            } else {
                (Tok::Punct('\''), 1)
            }
        }
        None => (Tok::Punct('\''), 1),
    }
}

/// Lexes a numeric literal (integers, floats, suffixes, `1.0e-3`).
/// Careful with ranges: `0..n` must stop the number at `0`.
fn lex_number(rest: &str) -> (String, usize) {
    let b = rest.as_bytes();
    let mut j = 0;
    while j < b.len() {
        let c = b[j] as char;
        if c.is_alphanumeric() || c == '_' {
            j += 1;
        } else if c == '.' {
            // `1.0` continues the number; `0..` is a range.
            match b.get(j + 1) {
                Some(&n) if (n as char).is_ascii_digit() => j += 1,
                _ => break,
            }
        } else if (c == '+' || c == '-') && j > 0 && matches!(b[j - 1], b'e' | b'E') {
            j += 1;
        } else {
            break;
        }
    }
    (rest[..j].to_string(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_recorded_not_tokenized() {
        let l = lex("let x = 1; // Instant::now inside a comment\n/* and\nhere */ let y;");
        assert!(idents("let x = 1; // Instant::now\nlet y;")
            .iter()
            .all(|i| i != "Instant"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("Instant::now"));
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_are_single_tokens() {
        let l = lex(r#"emit("Instant::now", r#x);"#);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Str(_)))
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(!idents(r#"let m = "Instant::now";"#).contains(&"Instant".to_string()));
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex(r##"let a = r#"has "quotes" and Instant::now"#; let b = b"bytes";"##);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("Instant::now"));
        assert_eq!(strs[1], "bytes");
    }

    #[test]
    fn chars_vs_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_stop_at_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5e-3; }");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3"]);
    }

    #[test]
    fn line_continuation_strings_keep_line_numbers() {
        // `\`-continued string literals cross a newline that must still
        // advance the line counter, or every token below drifts.
        let src = "let a = \"one \\\n two\";\nlet b = 1;\n\"plain\nmultiline\";\nlet c = 2;";
        let l = lex(src);
        let line_of = |name: &str| {
            l.tokens
                .iter()
                .find(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
                .map(|t| t.line)
        };
        assert_eq!(line_of("b"), Some(3));
        assert_eq!(line_of("c"), Some(6));
    }

    #[test]
    fn code_lines_track_tokens() {
        let l = lex("let a = 1;\n// only a comment\n\nlet b = 2;");
        assert!(l.is_code_line(1));
        assert!(!l.is_code_line(2));
        assert!(!l.is_code_line(3));
        assert!(l.is_code_line(4));
    }
}
