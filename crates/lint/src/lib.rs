//! `resilience-lint` — the workspace contract linter.
//!
//! `cargo clippy` cannot know this repository's domain invariants: that
//! campaign store keys come from an FNV fingerprint whose coverage is a
//! design decision per field, that manifests must be bit-identical at
//! any thread/shard/backend/chaos configuration, that the decode hot
//! path is allocation-free, and that the campaign layer never panics on
//! fallible input. This crate enforces those contracts statically, with
//! a hand-rolled lexer (no registry access, so no `syn`/dylint) and an
//! inline-annotation escape hatch that always requires a written
//! reason. See [`annot`] for the annotation grammar and [`config`] for
//! what applies where.
//!
//! Lints: `identity-coverage`, `wallclock`, `hash-order`,
//! `hot-path-alloc`, `no-unwrap`, `no-panic`, `unsafe-hygiene`,
//! `telemetry-catalog`, `annotation-syntax`.

#![forbid(unsafe_code)]

pub mod annot;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod workspace;

pub use config::{IdentityMode, IdentityStruct, LintConfig, TelemetryConfig};
pub use diag::Diagnostic;
pub use workspace::{SourceFile, Workspace};

/// Loads every `.rs` file under `cfg.root` and runs all lints.
pub fn run(cfg: &LintConfig) -> std::io::Result<Vec<Diagnostic>> {
    let ws = Workspace::load(cfg)?;
    Ok(run_on(cfg, &ws))
}

/// Runs all lints over an already-loaded workspace.
pub fn run_on(cfg: &LintConfig, ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lints::run_all(cfg, ws, &mut out);
    out
}
