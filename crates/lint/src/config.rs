//! Lint configuration: which files each contract applies to, where the
//! fingerprint lives, and which functions root the hot path.
//!
//! [`LintConfig::workspace`] encodes the repository's real contract
//! surface; [`LintConfig::bare`] starts empty for fixture tests.

use std::path::{Path, PathBuf};

/// How a type participates in campaign identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdentityMode {
    /// Field-by-field coverage: each field must appear in a fingerprint
    /// function body (identifier or format placeholder) or carry an
    /// `identity:` annotation.
    TokenCoverage,
    /// The whole value enters the fingerprint through its `Debug` repr
    /// (`{:?}`): the type must derive `Debug` and must not have a
    /// manual `Debug` impl that could skip fields.
    DebugHashed,
}

#[derive(Debug, Clone)]
pub struct IdentityStruct {
    pub name: String,
    pub mode: IdentityMode,
}

/// Telemetry-catalog lint inputs.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// File declaring the metric enums and their `ALL` catalogs.
    pub file: PathBuf,
    /// Metric enum names (`Counter`, `Gauge`, ...).
    pub enums: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root; every path below is relative to it.
    pub root: PathBuf,
    /// Relative path prefixes excluded from the walk entirely.
    pub skip: Vec<PathBuf>,
    /// File holding the fingerprint functions (identity lint).
    pub fingerprint_file: Option<PathBuf>,
    /// Fingerprint function names whose bodies define "hashed".
    pub fingerprint_fns: Vec<String>,
    /// Types whose identity participation is checked.
    pub identity_structs: Vec<IdentityStruct>,
    /// Relative prefixes where wall-clock/ambient randomness is legal
    /// (telemetry, dispatch supervision, CLI layers).
    pub wallclock_allow: Vec<PathBuf>,
    /// Relative prefixes whose output reaches bytes on disk: `HashMap`/
    /// `HashSet` use there must be justified.
    pub order_sensitive: Vec<PathBuf>,
    /// Hot-path root function names for the no-alloc call-graph walk.
    pub hot_path_roots: Vec<String>,
    /// Relative prefixes the call-graph walk may traverse. Empty means
    /// everywhere; the workspace config restricts it to the simulation
    /// crates so bare-name resolution cannot leak into tooling or CLI
    /// code that shares common function names.
    pub hot_path_scope: Vec<PathBuf>,
    /// Relative prefixes where `.unwrap()`/`.expect()`/`panic!` are
    /// forbidden in library code.
    pub hardened: Vec<PathBuf>,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]`.
    pub forbid_unsafe_crates: Vec<PathBuf>,
    /// Telemetry catalog inputs, if the tree has one.
    pub telemetry: Option<TelemetryConfig>,
}

impl LintConfig {
    /// An empty config rooted at `root` — fixtures opt into one lint at
    /// a time.
    pub fn bare(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            root: root.into(),
            skip: Vec::new(),
            fingerprint_file: None,
            fingerprint_fns: Vec::new(),
            identity_structs: Vec::new(),
            wallclock_allow: Vec::new(),
            order_sensitive: Vec::new(),
            hot_path_roots: Vec::new(),
            hot_path_scope: Vec::new(),
            hardened: Vec::new(),
            forbid_unsafe_crates: Vec::new(),
            telemetry: None,
        }
    }

    /// The real workspace contract surface.
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        let p = PathBuf::from;
        LintConfig {
            root: root.into(),
            skip: vec![
                // Vendored third-party stand-ins: not ours to harden.
                p("crates/shims"),
                // Known-bad lint fixtures: linted only by their own tests.
                p("crates/lint/fixtures"),
            ],
            fingerprint_file: Some(p("crates/core/src/campaign/hash.rs")),
            fingerprint_fns: vec!["point_fingerprint".into(), "custom_fingerprint".into()],
            identity_structs: vec![
                IdentityStruct {
                    name: "CampaignSettings".into(),
                    mode: IdentityMode::TokenCoverage,
                },
                IdentityStruct {
                    name: "CampaignPoint".into(),
                    mode: IdentityMode::TokenCoverage,
                },
                IdentityStruct {
                    name: "CustomCampaignPoint".into(),
                    mode: IdentityMode::TokenCoverage,
                },
                IdentityStruct {
                    name: "SystemConfig".into(),
                    mode: IdentityMode::DebugHashed,
                },
                IdentityStruct {
                    name: "StorageConfig".into(),
                    mode: IdentityMode::DebugHashed,
                },
            ],
            wallclock_allow: vec![
                // Telemetry exists to measure wall time.
                p("crates/core/src/telemetry.rs"),
                // Dispatch supervises real processes: stall detection
                // and backoff are wall-clock by nature.
                p("crates/core/src/campaign/dispatch.rs"),
                // CLI/figure layer: progress reporting, not simulation.
                p("crates/bench"),
            ],
            order_sensitive: vec![
                p("crates/core/src"),
                p("crates/dsp/src"),
                p("crates/silicon/src"),
                p("crates/hspa-phy/src"),
            ],
            hot_path_roots: vec![
                "simulate_packet_with".into(),
                "simulate_wave_with".into(),
                "decode_batch".into(),
            ],
            hot_path_scope: vec![
                p("crates/core/src"),
                p("crates/dsp/src"),
                p("crates/silicon/src"),
                p("crates/hspa-phy/src"),
            ],
            hardened: vec![p("crates/core/src/campaign")],
            forbid_unsafe_crates: vec![
                p("crates/core/src/lib.rs"),
                p("crates/dsp/src/lib.rs"),
                p("crates/silicon/src/lib.rs"),
                p("crates/hspa-phy/src/lib.rs"),
            ],
            telemetry: Some(TelemetryConfig {
                file: p("crates/core/src/telemetry.rs"),
                enums: vec!["Counter".into(), "Gauge".into(), "Histogram".into()],
            }),
        }
    }
}

/// Does relative path `rel` live under any of `prefixes`?
pub fn under_any(rel: &Path, prefixes: &[PathBuf]) -> bool {
    prefixes.iter().any(|pre| rel.starts_with(pre))
}

/// Test-support path: integration tests, benches, examples and build
/// scripts are exempt from production-code contracts.
pub fn is_test_path(rel: &Path) -> bool {
    let support_dir = rel.iter().any(|c| {
        let c = c.to_string_lossy();
        c == "tests" || c == "benches" || c == "examples"
    });
    support_dir || rel.file_name().is_some_and(|f| f == "build.rs")
}
