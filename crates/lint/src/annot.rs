//! Inline-annotation escape hatches.
//!
//! Every lint in this crate can be silenced locally, but only with a
//! written reason — the annotation grammar *requires* a non-empty
//! argument, so the decision is recorded next to the code it covers:
//!
//! * `// identity: excluded(<reason>)` — field deliberately left out of
//!   the campaign fingerprint (operational knob, display label, ...).
//! * `// identity: hashed(<reason>)` — field enters the fingerprint by
//!   a route the linter cannot see (e.g. passed as the `custom`
//!   descriptor string).
//! * `// determinism: wallclock(<reason>)` — wall-clock read that never
//!   influences simulation results (telemetry timing, stall watchdogs).
//! * `// determinism: unordered-ok(<reason>)` — `HashMap`/`HashSet`
//!   whose iteration order provably never reaches bytes on disk
//!   (keyed lookups only, order-independent folds, ...).
//! * `// alloc: cold(<reason>)` — allocation on a hot-path-reachable
//!   line (or, on a `fn` signature, the whole function) that runs only
//!   on cold branches such as setup or error paths.
//! * `// lint: allow(no-unwrap, <reason>)` / `// lint: allow(no-panic,
//!   <reason>)` — provably-infallible unwrap or deliberate fatal exit.
//! * `// SAFETY: <justification>` — required above every `unsafe`.
//!
//! An annotation attaches to the code line it trails, or — when it
//! stands on a line of its own — to the next code line below it.

use crate::lexer::Lexed;

#[derive(Debug, Clone, PartialEq)]
pub enum AnnKind {
    IdentityExcluded,
    IdentityHashed,
    Wallclock,
    UnorderedOk,
    AllocCold,
    Allow(String),
    Safety,
}

#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based code line the annotation covers.
    pub line: u32,
    pub kind: AnnKind,
    #[allow(dead_code)]
    pub reason: String,
}

/// Parsed annotations of one file, plus syntax problems found while
/// parsing (reported under the `annotation-syntax` lint).
#[derive(Debug, Default)]
pub struct Annotations {
    items: Vec<Annotation>,
    pub problems: Vec<(u32, String)>,
}

impl Annotations {
    /// Is `kind` present on `line`?
    pub fn has(&self, line: u32, kind: &AnnKind) -> bool {
        self.items.iter().any(|a| a.line == line && a.kind == *kind)
    }

    /// Is an `allow(<lint>)` present on `line`?
    pub fn allows(&self, line: u32, lint: &str) -> bool {
        self.has(line, &AnnKind::Allow(lint.to_string()))
    }
}

/// Annotation prefixes and their recognised modes.
const FAMILIES: &[(&str, &[&str])] = &[
    ("identity:", &["excluded", "hashed"]),
    ("determinism:", &["wallclock", "unordered-ok"]),
    ("alloc:", &["cold"]),
    ("lint:", &["allow"]),
];

pub fn parse(lexed: &Lexed) -> Annotations {
    let mut out = Annotations::default();
    for comment in &lexed.comments {
        for (offset, raw) in comment.text.lines().enumerate() {
            // Doc comments arrive as `/ text` or `! text`; strip the
            // marker and any `*` continuation of block comments.
            let text = raw.trim_start_matches(['/', '!', '*', ' ', '\t']).trim();
            let line = comment.line + offset as u32;
            parse_line(text, line, lexed, &mut out);
        }
    }
    out.items.sort_by_key(|a| a.line);
    out.problems.sort();
    out
}

fn parse_line(text: &str, comment_line: u32, lexed: &Lexed, out: &mut Annotations) {
    if let Some(rest) = text.strip_prefix("SAFETY:") {
        if rest.trim().is_empty() {
            out.problems.push((
                comment_line,
                "`SAFETY:` comment has no justification".into(),
            ));
        } else {
            out.items.push(Annotation {
                line: attach_line(comment_line, lexed),
                kind: AnnKind::Safety,
                reason: rest.trim().to_string(),
            });
        }
        return;
    }
    for (family, modes) in FAMILIES {
        let Some(rest) = text.strip_prefix(family) else {
            continue;
        };
        let rest = rest.trim();
        let Some((mode, args)) = split_call(rest) else {
            out.problems.push((
                comment_line,
                format!("malformed `{family}` annotation: expected `{family} <mode>(<reason>)`"),
            ));
            return;
        };
        if !modes.contains(&mode) {
            out.problems.push((
                comment_line,
                format!(
                    "unknown `{family}` mode `{mode}` (expected one of: {})",
                    modes.join(", ")
                ),
            ));
            return;
        }
        let kind = match (*family, mode) {
            ("identity:", "excluded") => AnnKind::IdentityExcluded,
            ("identity:", "hashed") => AnnKind::IdentityHashed,
            ("determinism:", "wallclock") => AnnKind::Wallclock,
            ("determinism:", "unordered-ok") => AnnKind::UnorderedOk,
            ("alloc:", "cold") => AnnKind::AllocCold,
            _ => {
                // lint: allow(<lint-id>, <reason>)
                let Some((lint_id, reason)) = args.split_once(',') else {
                    out.problems.push((
                        comment_line,
                        "`lint: allow` needs a lint id and a reason: \
                         `lint: allow(<lint-id>, <reason>)`"
                            .into(),
                    ));
                    return;
                };
                if reason.trim().is_empty() {
                    out.problems
                        .push((comment_line, "`lint: allow` reason is empty".into()));
                    return;
                }
                out.items.push(Annotation {
                    line: attach_line(comment_line, lexed),
                    kind: AnnKind::Allow(lint_id.trim().to_string()),
                    reason: reason.trim().to_string(),
                });
                return;
            }
        };
        if args.trim().is_empty() {
            out.problems.push((
                comment_line,
                format!("`{family} {mode}(...)` requires a non-empty reason"),
            ));
            return;
        }
        out.items.push(Annotation {
            line: attach_line(comment_line, lexed),
            kind,
            reason: args.trim().to_string(),
        });
        return;
    }
}

/// Splits `mode(args)` into `(mode, args)`; the closing paren is the
/// *last* one on the line so reasons may contain parentheses.
fn split_call(text: &str) -> Option<(&str, &str)> {
    let open = text.find('(')?;
    let close = text.rfind(')')?;
    if close < open {
        return None;
    }
    let mode = text[..open].trim();
    if mode.is_empty() || mode.contains(' ') {
        return None;
    }
    Some((mode, &text[open + 1..close]))
}

/// The code line an annotation on `comment_line` covers: the same line
/// if it trails code, otherwise the next code-bearing line below.
fn attach_line(comment_line: u32, lexed: &Lexed) -> u32 {
    if lexed.is_code_line(comment_line) {
        return comment_line;
    }
    (comment_line + 1..=lexed.lines)
        .find(|&l| lexed.is_code_line(l))
        .unwrap_or(comment_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> Annotations {
        parse(&lex(src))
    }

    #[test]
    fn trailing_annotation_attaches_to_its_line() {
        let a = parsed("let h: HashMap<u8, u8>; // determinism: unordered-ok(keyed gets only)\n");
        assert!(a.has(1, &AnnKind::UnorderedOk));
        assert!(a.problems.is_empty());
    }

    #[test]
    fn standalone_annotation_attaches_below() {
        let a = parsed(
            "// identity: excluded(operational knob, never keys the store)\n\
             // spans a second comment line\n\
             pub resume: bool,\n",
        );
        assert!(a.has(3, &AnnKind::IdentityExcluded));
    }

    #[test]
    fn empty_reason_is_a_problem() {
        let a = parsed("// alloc: cold()\nlet v = Vec::new();\n");
        assert!(!a.has(2, &AnnKind::AllocCold));
        assert_eq!(a.problems.len(), 1);
    }

    #[test]
    fn unknown_mode_is_a_problem() {
        let a = parsed("// determinism: trust-me(why not)\nlet x = 1;\n");
        assert_eq!(a.problems.len(), 1);
        assert!(a.problems[0].1.contains("unknown"));
    }

    #[test]
    fn lint_allow_carries_its_id() {
        let a = parsed("x.unwrap(); // lint: allow(no-unwrap, slice length checked above)\n");
        assert!(a.allows(1, "no-unwrap"));
        assert!(!a.allows(1, "no-panic"));
    }

    #[test]
    fn lint_allow_without_reason_is_a_problem() {
        let a = parsed("x.unwrap(); // lint: allow(no-unwrap)\n");
        assert!(!a.allows(1, "no-unwrap"));
        assert_eq!(a.problems.len(), 1);
    }

    #[test]
    fn safety_comment_above_unsafe() {
        let a = parsed("// SAFETY: index bounded by the loop above\nunsafe { go(i) }\n");
        assert!(a.has(2, &AnnKind::Safety));
        let bad = parsed("// SAFETY:\nunsafe { go(i) }\n");
        assert_eq!(bad.problems.len(), 1);
    }

    #[test]
    fn reasons_may_contain_parens() {
        let a = parsed("// determinism: wallclock(telemetry only (never hashed))\nlet t = 0;\n");
        assert!(a.has(2, &AnnKind::Wallclock));
        assert!(a.problems.is_empty());
    }
}
