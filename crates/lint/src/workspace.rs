//! Workspace loading: walk the tree, lex and model every `.rs` file.

use std::io;
use std::path::{Path, PathBuf};

use crate::annot::{self, Annotations};
use crate::config::LintConfig;
use crate::lexer::{self, Lexed, Tok};
use crate::model::{self, FileModel};

/// One lexed, modelled source file.
pub struct SourceFile {
    /// Path relative to the lint root.
    pub rel: PathBuf,
    pub lexed: Lexed,
    pub model: FileModel,
    pub anns: Annotations,
}

impl SourceFile {
    /// Builds a file straight from source text — the unit-test and
    /// fixture entry point.
    pub fn from_source(rel: impl Into<PathBuf>, text: &str) -> Self {
        let lexed = lexer::lex(text);
        let model = model::build(&lexed);
        let anns = annot::parse(&lexed);
        SourceFile {
            rel: rel.into(),
            lexed,
            model,
            anns,
        }
    }

    /// The identifier at token index `i`, if any.
    pub fn ident_at(&self, i: usize) -> Option<&str> {
        match self.lexed.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Is token `i` the punct `c`?
    pub fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.lexed.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Is `name::` or `Type::name` path punctuation at `i..i+2`?
    pub fn path_sep_at(&self, i: usize) -> bool {
        self.punct_at(i, ':') && self.punct_at(i + 1, ':')
    }

    /// 1-based line of token `i` (0 when out of range — callers only
    /// ask about tokens they just matched).
    pub fn line_of(&self, i: usize) -> u32 {
        self.lexed.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }
}

/// Every `.rs` file under the configured root, in sorted order.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    pub fn load(cfg: &LintConfig) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        walk(&cfg.root, &cfg.root, cfg, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for rel in paths {
            let text = std::fs::read_to_string(cfg.root.join(&rel))?;
            files.push(SourceFile::from_source(rel, &text));
        }
        Ok(Workspace { files })
    }

    /// In-memory workspace for tests.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(rel, text)| SourceFile::from_source(*rel, text))
                .collect(),
        }
    }

    pub fn file(&self, rel: &Path) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn walk(root: &Path, dir: &Path, cfg: &LintConfig, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == "target" || name.starts_with('.') {
            continue;
        }
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if crate::config::under_any(&rel, &cfg.skip) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            walk(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}
