//! The real workspace must be clean under the full contract surface:
//! this is the same check CI runs via `resilience-lint --deny`, kept as
//! a test so `cargo test` alone catches a regression.

use std::path::Path;

use resilience_lint::LintConfig;

#[test]
fn workspace_has_no_contract_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let cfg = LintConfig::workspace(&root);
    let diags = resilience_lint::run(&cfg).expect("lint run");
    assert!(
        diags.is_empty(),
        "workspace contract violations:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
