//! Fixture self-tests: every lint must fire on its known-bad tree at
//! exactly the marked lines, and nowhere else.
//!
//! Expectations live in the fixtures themselves as `//~ ERROR <lint>`
//! (same line) and `//~^ ERROR <lint>` (line above) markers — see
//! `fixtures/README.md`. The comparison is bidirectional: a missing
//! diagnostic and a spurious one both fail.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use resilience_lint::{IdentityMode, IdentityStruct, LintConfig, TelemetryConfig};

type Finding = (String, u32, String);

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Collect `//~ ERROR` / `//~^ ERROR` markers from every `.rs` file
/// under `root`, keyed by path relative to `root`.
fn expected_findings(root: &Path) -> BTreeSet<Finding> {
    let mut out = BTreeSet::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read fixture dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path.strip_prefix(root).expect("under root");
                let src = std::fs::read_to_string(&path).expect("read fixture");
                for (idx, line) in src.lines().enumerate() {
                    let lineno = idx as u32 + 1;
                    if let Some(rest) = line.split("//~^ ERROR ").nth(1) {
                        let lint = rest.split_whitespace().next().expect("lint id");
                        out.insert((rel.display().to_string(), lineno - 1, lint.to_string()));
                    } else if let Some(rest) = line.split("//~ ERROR ").nth(1) {
                        let lint = rest.split_whitespace().next().expect("lint id");
                        out.insert((rel.display().to_string(), lineno, lint.to_string()));
                    }
                }
            }
        }
    }
    out
}

/// Run the linter over fixture `name` and compare against its markers.
fn check_fixture(name: &str, cfg: &LintConfig) {
    let root = fixture_root(name);
    let expected = expected_findings(&root);
    assert!(
        !expected.is_empty(),
        "fixture `{name}` has no //~ ERROR markers — nothing to pin"
    );
    let found: BTreeSet<Finding> = resilience_lint::run(cfg)
        .expect("lint run")
        .into_iter()
        .map(|d| (d.file.display().to_string(), d.line, d.lint.to_string()))
        .collect();
    let missing: Vec<_> = expected.difference(&found).collect();
    let spurious: Vec<_> = found.difference(&expected).collect();
    assert!(
        missing.is_empty() && spurious.is_empty(),
        "fixture `{name}` mismatch:\n  expected but not reported: {missing:?}\n  \
         reported but not expected: {spurious:?}"
    );
}

#[test]
fn identity_fixture() {
    let mut cfg = LintConfig::bare(fixture_root("identity"));
    cfg.fingerprint_file = Some(PathBuf::from("hash.rs"));
    cfg.fingerprint_fns = vec!["point_fingerprint".into()];
    cfg.identity_structs = vec![
        IdentityStruct {
            name: "Point".into(),
            mode: IdentityMode::TokenCoverage,
        },
        IdentityStruct {
            name: "Cfg".into(),
            mode: IdentityMode::DebugHashed,
        },
    ];
    check_fixture("identity", &cfg);
}

#[test]
fn determinism_fixture() {
    let mut cfg = LintConfig::bare(fixture_root("determinism"));
    cfg.order_sensitive = vec![PathBuf::from("src")];
    check_fixture("determinism", &cfg);
}

#[test]
fn hot_path_alloc_fixture() {
    let mut cfg = LintConfig::bare(fixture_root("hot-path-alloc"));
    cfg.hot_path_roots = vec!["simulate_packet_with".into()];
    check_fixture("hot-path-alloc", &cfg);
}

#[test]
fn hygiene_fixture() {
    let mut cfg = LintConfig::bare(fixture_root("hygiene"));
    cfg.hardened = vec![PathBuf::from("src/campaign")];
    check_fixture("hygiene", &cfg);
}

#[test]
fn unsafe_hygiene_fixture() {
    let mut cfg = LintConfig::bare(fixture_root("unsafe-hygiene"));
    cfg.forbid_unsafe_crates = vec![PathBuf::from("src/lib.rs")];
    check_fixture("unsafe-hygiene", &cfg);
}

#[test]
fn telemetry_fixture() {
    let mut cfg = LintConfig::bare(fixture_root("telemetry"));
    cfg.telemetry = Some(TelemetryConfig {
        file: PathBuf::from("telemetry.rs"),
        enums: vec!["Counter".into()],
    });
    check_fixture("telemetry", &cfg);
}

#[test]
fn annotation_syntax_fixture() {
    let cfg = LintConfig::bare(fixture_root("annotation-syntax"));
    check_fixture("annotation-syntax", &cfg);
}
