//! Linear equalization of the multipath channel.
//!
//! The paper's receiver uses an MMSE equalizer to generate the soft LLRs
//! that feed the HARQ storage. [`MmseEqualizer`] designs a symbol-spaced
//! FIR filter from perfect channel knowledge by solving
//! `(HᴴH + σ²I) w = Hᴴ e_d` (a complex Cholesky solve), and reports the
//! post-equalization effective gain and noise variance so the demapper
//! can produce correctly scaled LLRs. [`RakeReceiver`] (channel matched
//! filter) is the cheaper baseline for the equalizer ablation.

use dsp::filter::{convolve_complex, convolve_complex_into};
use dsp::linalg::{toeplitz_channel_into, CMatrix, CholeskyScratch, LinalgError};
use dsp::Complex64;

use crate::channel::ChannelRealization;

/// Reusable workspace (and standing design) of the MMSE equalizer.
///
/// Designing an MMSE filter per channel realization builds a Toeplitz
/// convolution matrix, its Gram matrix, a Cholesky factor and several
/// work vectors; this scratch owns all of them so a Monte-Carlo worker
/// redesigns the equalizer every transmission without touching the heap.
/// [`EqScratch::design`] stores the resulting filter in place;
/// [`EqScratch::equalize_into`] then applies it. Results are
/// bit-identical to the allocating [`MmseEqualizer::design`] /
/// [`MmseEqualizer::equalize`] pair (which delegates here).
#[derive(Debug, Clone)]
pub struct EqScratch {
    c: CMatrix,
    a: CMatrix,
    chol: CholeskyScratch,
    e_d: Vec<Complex64>,
    weights: Vec<Complex64>,
    g: Vec<Complex64>,
    filtered: Vec<Complex64>,
    delay: usize,
    gain: Complex64,
    noise_var: f64,
}

impl EqScratch {
    /// Fresh workspace; buffers grow to steady-state size on first use.
    // alloc: cold(constructor; a worker builds its scratch once and reuses it every transmission)
    pub fn new() -> Self {
        Self {
            c: CMatrix::zeros(1, 1),
            a: CMatrix::zeros(1, 1),
            chol: CholeskyScratch::new(),
            e_d: Vec::new(),
            weights: Vec::new(),
            g: Vec::new(),
            filtered: Vec::new(),
            delay: 0,
            gain: Complex64::ONE,
            noise_var: 1.0,
        }
    }

    /// Designs an `n_taps` MMSE filter for `channel`, storing it in
    /// place. See [`MmseEqualizer::design`] for the formulation.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] if the normal equations are singular.
    ///
    /// # Panics
    ///
    /// Panics if `n_taps` is zero or the channel has no taps.
    pub fn design(
        &mut self,
        channel: &ChannelRealization,
        n_taps: usize,
    ) -> Result<(), LinalgError> {
        assert!(n_taps > 0, "equalizer needs at least one tap");
        assert!(!channel.taps.is_empty(), "channel has no taps");
        let l = channel.taps.len();
        // Equalizer output o = w ⊛ y = (C w) ⊛ s + w ⊛ v with C the
        // (N+L-1) × N convolution matrix of the channel. Minimizing
        // ‖C w − e_d‖² + σ²‖w‖² gives (CᴴC + σ²I) w = Cᴴ e_d, where
        // (Cᴴ e_d)[m] = h*[d − m].
        let rows = n_taps + l - 1;
        toeplitz_channel_into(&channel.taps, rows, n_taps, &mut self.c);
        self.c.gram_into(&mut self.a);
        self.a.add_diagonal(channel.noise_var.max(1e-12));
        // Decision delay: center of the combined response.
        let delay = rows / 2;
        self.e_d.clear();
        self.e_d.resize(n_taps, Complex64::ZERO);
        for (m, e) in self.e_d.iter_mut().enumerate() {
            if delay >= m && delay - m < l {
                *e = channel.taps[delay - m].conj();
            }
        }
        self.a
            .solve_hermitian_into(&self.e_d, &mut self.chol, &mut self.weights)?;
        // Combined response g = w ⊛ h, length rows.
        convolve_complex_into(&self.weights, &channel.taps, &mut self.g);
        let gain = self.g[delay];
        // Residual ISI power + filtered noise power, referred to output.
        let isi: f64 = self
            .g
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != delay)
            .map(|(_, c)| c.norm_sqr())
            .sum();
        let nf: f64 = self.weights.iter().map(|c| c.norm_sqr()).sum::<f64>() * channel.noise_var;
        let gain_sq = gain.norm_sqr().max(1e-12);
        self.delay = delay;
        self.gain = gain;
        self.noise_var = (isi + nf) / gain_sq;
        Ok(())
    }

    /// The most recently designed filter weights.
    pub fn weights(&self) -> &[Complex64] {
        &self.weights
    }

    /// Decision delay of the standing design, in symbols.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Effective post-equalizer noise variance of the standing design.
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Appends the capacity of every owned heap buffer to `out` (in a
    /// stable order) — lets callers assert the steady-state
    /// zero-allocation invariant across designs.
    pub fn heap_capacities(&self, out: &mut Vec<usize>) {
        out.extend([
            self.c.data_capacity(),
            self.a.data_capacity(),
            self.e_d.capacity(),
            self.weights.capacity(),
            self.g.capacity(),
            self.filtered.capacity(),
        ]);
        self.chol.heap_capacities(out);
    }

    /// Applies the standing design to `rx`, writing delay/bias-corrected
    /// symbols into `out` (cleared first) — the allocation-free
    /// counterpart of [`MmseEqualizer::equalize`].
    pub fn equalize_into(&mut self, rx: &[Complex64], out: &mut Vec<Complex64>) {
        convolve_complex_into(rx, &self.weights, &mut self.filtered);
        // Output sample for tx symbol n sits at index n + delay.
        let inv_gain = self.gain.inv();
        out.clear();
        out.reserve(rx.len());
        for n in 0..rx.len() {
            let idx = n + self.delay;
            let v = if idx < self.filtered.len() {
                self.filtered[idx]
            } else {
                Complex64::ZERO
            };
            out.push(v * inv_gain);
        }
    }
}

impl Default for EqScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Output of an equalization pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualizedBlock {
    /// Equalized symbols, bias-corrected to unit gain.
    pub symbols: Vec<Complex64>,
    /// Effective complex noise variance per equalized symbol (noise +
    /// residual ISI, referred to the unit-gain output).
    pub noise_var: f64,
}

/// Symbol-spaced linear MMSE FIR equalizer with perfect CSI.
///
/// # Example
///
/// ```
/// use hspa_phy::channel::{ChannelModel, StaticIsiChannel};
/// use hspa_phy::equalizer::MmseEqualizer;
/// use dsp::rng::seeded;
/// use dsp::Complex64;
///
/// let real = StaticIsiChannel::mild().realize(20.0, &mut seeded(1));
/// let eq = MmseEqualizer::design(&real, 15)?;
/// let rx = vec![Complex64::ONE; 32];
/// let out = eq.equalize(&rx);
/// assert_eq!(out.symbols.len(), 32);
/// # Ok::<(), dsp::linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MmseEqualizer {
    weights: Vec<Complex64>,
    delay: usize,
    gain: Complex64,
    noise_var: f64,
}

impl MmseEqualizer {
    /// Designs an `n_taps` MMSE filter for the given channel realization.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] if the normal equations are singular
    /// (cannot happen for `noise_var > 0`, but surfaced rather than
    /// panicking).
    ///
    /// # Panics
    ///
    /// Panics if `n_taps` is zero or the channel has no taps.
    pub fn design(channel: &ChannelRealization, n_taps: usize) -> Result<Self, LinalgError> {
        let mut scratch = EqScratch::new();
        scratch.design(channel, n_taps)?;
        Ok(Self {
            weights: scratch.weights,
            delay: scratch.delay,
            gain: scratch.gain,
            noise_var: scratch.noise_var,
        })
    }

    /// Designs the filter from an imperfect channel estimate: each true
    /// tap is perturbed by complex Gaussian estimation noise of variance
    /// `csi_error_var` before the MMSE design runs, while the reported
    /// post-equalization statistics are evaluated against the *true*
    /// channel — modelling a pilot-based estimator of finite quality.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] like [`MmseEqualizer::design`].
    ///
    /// # Panics
    ///
    /// Panics if `csi_error_var` is negative.
    pub fn design_with_csi_error(
        channel: &ChannelRealization,
        n_taps: usize,
        csi_error_var: f64,
        rng: &mut rand::rngs::StdRng,
    ) -> Result<Self, LinalgError> {
        assert!(
            csi_error_var >= 0.0,
            "estimation-error variance must be >= 0"
        );
        let estimate = ChannelRealization {
            taps: channel
                .taps
                .iter()
                .map(|&t| t + dsp::rng::complex_gaussian(rng, csi_error_var))
                .collect(),
            noise_var: channel.noise_var,
        };
        let designed = Self::design(&estimate, n_taps)?;
        // Re-evaluate gain and residual error against the true channel.
        let g = convolve_complex(&designed.weights, &channel.taps);
        let delay = designed.delay;
        let gain = g[delay];
        let isi: f64 = g
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != delay)
            .map(|(_, c)| c.norm_sqr())
            .sum();
        let nf: f64 =
            designed.weights.iter().map(|c| c.norm_sqr()).sum::<f64>() * channel.noise_var;
        let gain_sq = gain.norm_sqr().max(1e-12);
        Ok(Self {
            weights: designed.weights,
            delay,
            gain,
            noise_var: (isi + nf) / gain_sq,
        })
    }

    /// The designed filter weights.
    pub fn weights(&self) -> &[Complex64] {
        &self.weights
    }

    /// Decision delay in symbols.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Effective post-equalizer noise variance (unit-gain referred).
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Post-equalization SINR (linear).
    pub fn sinr(&self) -> f64 {
        1.0 / self.noise_var
    }

    /// Equalizes a received block, compensating delay and bias so output
    /// symbol `n` estimates transmitted symbol `n` with unit gain.
    pub fn equalize(&self, rx: &[Complex64]) -> EqualizedBlock {
        let mut filtered = convolve_complex(rx, &self.weights);
        // Output sample for tx symbol n sits at index n + delay.
        let inv_gain = self.gain.inv();
        let mut symbols = Vec::with_capacity(rx.len());
        for n in 0..rx.len() {
            let idx = n + self.delay;
            let v = if idx < filtered.len() {
                filtered[idx]
            } else {
                Complex64::ZERO
            };
            symbols.push(v * inv_gain);
        }
        filtered.clear();
        EqualizedBlock {
            symbols,
            noise_var: self.noise_var,
        }
    }
}

/// Channel matched filter (RAKE-style combining) — the low-complexity
/// baseline. Optimal for a single path, ISI-limited on dispersive
/// channels.
#[derive(Debug, Clone, PartialEq)]
pub struct RakeReceiver {
    weights: Vec<Complex64>,
    delay: usize,
    gain: Complex64,
    noise_var: f64,
}

impl RakeReceiver {
    /// Builds the matched filter `w[n] = h*[L-1-n]` for the realization.
    ///
    /// # Panics
    ///
    /// Panics if the channel has no taps.
    pub fn design(channel: &ChannelRealization) -> Self {
        assert!(!channel.taps.is_empty(), "channel has no taps");
        let l = channel.taps.len();
        let weights: Vec<Complex64> = channel.taps.iter().rev().map(|t| t.conj()).collect();
        let g = convolve_complex(&weights, &channel.taps);
        let delay = l - 1;
        let gain = g[delay];
        let isi: f64 = g
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != delay)
            .map(|(_, c)| c.norm_sqr())
            .sum();
        let nf: f64 = weights.iter().map(|c| c.norm_sqr()).sum::<f64>() * channel.noise_var;
        let gain_sq = gain.norm_sqr().max(1e-12);
        Self {
            weights,
            delay,
            gain,
            noise_var: (isi + nf) / gain_sq,
        }
    }

    /// Effective post-combining noise-plus-ISI variance.
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Applies the matched filter with delay/bias compensation.
    pub fn equalize(&self, rx: &[Complex64]) -> EqualizedBlock {
        let filtered = convolve_complex(rx, &self.weights);
        let inv_gain = self.gain.inv();
        let symbols = (0..rx.len())
            .map(|n| {
                let idx = n + self.delay;
                if idx < filtered.len() {
                    filtered[idx] * inv_gain
                } else {
                    Complex64::ZERO
                }
            })
            .collect();
        EqualizedBlock {
            symbols,
            noise_var: self.noise_var,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelModel, MultipathChannel, StaticIsiChannel};
    use dsp::rng::{complex_gaussian_vec, seeded};

    fn qpsk_block(n: usize, seed: u64) -> Vec<Complex64> {
        use rand::Rng;
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| {
                let re = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let im = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                Complex64::new(re, im).scale(std::f64::consts::FRAC_1_SQRT_2)
            })
            .collect()
    }

    #[test]
    fn flat_channel_is_passthrough() {
        let real = ChannelRealization {
            taps: vec![Complex64::ONE],
            noise_var: 1e-6,
        };
        let eq = MmseEqualizer::design(&real, 7).unwrap();
        let tx = qpsk_block(50, 1);
        let out = eq.equalize(&tx);
        for (a, b) in out.symbols.iter().zip(&tx) {
            assert!((*a - *b).norm() < 1e-3);
        }
    }

    #[test]
    fn rotated_channel_is_derotated() {
        let real = ChannelRealization {
            taps: vec![Complex64::from_polar(1.0, 1.1)],
            noise_var: 1e-6,
        };
        let eq = MmseEqualizer::design(&real, 5).unwrap();
        let tx = qpsk_block(32, 2);
        let mut rng = seeded(3);
        let rx = real.apply(&tx, &mut rng);
        let out = eq.equalize(&rx);
        for (a, b) in out.symbols.iter().zip(&tx) {
            assert!((*a - *b).norm() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn mmse_opens_the_eye_on_isi_channel() {
        let mut rng = seeded(4);
        let real = StaticIsiChannel::mild().realize(25.0, &mut rng);
        let tx = qpsk_block(400, 5);
        let rx = real.apply(&tx, &mut rng);
        let eq = MmseEqualizer::design(&real, 21).unwrap();
        let out = eq.equalize(&rx);
        // Hard decisions must match for nearly all symbols at 25 dB.
        let errors = out
            .symbols
            .iter()
            .zip(&tx)
            .filter(|(a, b)| (a.re > 0.0) != (b.re > 0.0) || (a.im > 0.0) != (b.im > 0.0))
            .count();
        assert!(errors <= 2, "{errors} symbol errors after MMSE");
    }

    #[test]
    fn mmse_beats_rake_on_dispersive_channel() {
        let ch = MultipathChannel::vehicular_a_chip_rate();
        let mut rng = seeded(6);
        let mut mmse_better = 0;
        let trials = 20;
        for _ in 0..trials {
            let real = ch.realize(15.0, &mut rng);
            let eq = MmseEqualizer::design(&real, 31).unwrap();
            let rake = RakeReceiver::design(&real);
            if eq.noise_var() < rake.noise_var() {
                mmse_better += 1;
            }
        }
        assert!(
            mmse_better >= trials - 2,
            "MMSE should dominate RAKE, won {mmse_better}/{trials}"
        );
    }

    #[test]
    fn reported_noise_var_matches_empirical() {
        let mut rng = seeded(7);
        let real = StaticIsiChannel::mild().realize(15.0, &mut rng);
        let eq = MmseEqualizer::design(&real, 21).unwrap();
        let tx = qpsk_block(4000, 8);
        let rx = real.apply(&tx, &mut rng);
        let out = eq.equalize(&rx);
        // Skip edges where the filter lacks context.
        let skip = 32;
        let emp: f64 = out.symbols[skip..out.symbols.len() - skip]
            .iter()
            .zip(&tx[skip..tx.len() - skip])
            .map(|(&a, &b)| (a - b).norm_sqr())
            .sum::<f64>()
            / (tx.len() - 2 * skip) as f64;
        let ratio = emp / out.noise_var;
        assert!(
            (0.5..2.0).contains(&ratio),
            "empirical {} vs predicted {}",
            emp,
            out.noise_var
        );
    }

    #[test]
    fn sinr_improves_with_snr() {
        let mut rng = seeded(9);
        let real_lo = StaticIsiChannel::mild().realize(5.0, &mut rng);
        let real_hi = StaticIsiChannel::mild().realize(25.0, &mut rng);
        let eq_lo = MmseEqualizer::design(&real_lo, 15).unwrap();
        let eq_hi = MmseEqualizer::design(&real_hi, 15).unwrap();
        assert!(eq_hi.sinr() > eq_lo.sinr());
    }

    #[test]
    fn rake_optimal_on_flat_channel() {
        let real = ChannelRealization {
            taps: vec![Complex64::new(0.8, 0.6)],
            noise_var: 0.1,
        };
        let rake = RakeReceiver::design(&real);
        // Matched filter on one tap: output SNR = |h|²/σ² = 1/0.1 = 10.
        assert!((1.0 / rake.noise_var() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn csi_error_degrades_sinr_gracefully() {
        let ch = MultipathChannel::vehicular_a_chip_rate();
        let mut rng = seeded(21);
        let mut perfect_sum = 0.0;
        let mut noisy_sum = 0.0;
        let mut awful_sum = 0.0;
        for _ in 0..30 {
            let real = ch.realize(15.0, &mut rng);
            perfect_sum += MmseEqualizer::design(&real, 21).unwrap().sinr();
            noisy_sum += MmseEqualizer::design_with_csi_error(&real, 21, 1e-4, &mut rng)
                .unwrap()
                .sinr();
            awful_sum += MmseEqualizer::design_with_csi_error(&real, 21, 0.3, &mut rng)
                .unwrap()
                .sinr();
        }
        // Tiny estimation error is nearly free; gross error costs dBs.
        assert!(
            noisy_sum > 0.9 * perfect_sum,
            "{noisy_sum} vs {perfect_sum}"
        );
        assert!(
            awful_sum < 0.7 * perfect_sum,
            "{awful_sum} vs {perfect_sum}"
        );
    }

    #[test]
    fn zero_csi_error_matches_perfect_design() {
        let mut rng = seeded(22);
        let real = StaticIsiChannel::mild().realize(12.0, &mut rng);
        let a = MmseEqualizer::design(&real, 11).unwrap();
        let b = MmseEqualizer::design_with_csi_error(&real, 11, 0.0, &mut rng).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn equalize_preserves_length() {
        let mut rng = seeded(10);
        let real = StaticIsiChannel::mild().realize(10.0, &mut rng);
        let eq = MmseEqualizer::design(&real, 9).unwrap();
        let rx = complex_gaussian_vec(&mut rng, 77, 1.0);
        assert_eq!(eq.equalize(&rx).symbols.len(), 77);
    }
}
