//! Transport-block CRC attachment (TS 25.212 §4.2.1).
//!
//! HSDPA transport blocks carry a 24-bit CRC
//! (`gCRC24(D) = D²⁴ + D²³ + D⁶ + D⁵ + D + 1`); the receiver's CRC check is
//! what turns a decoded block into an ACK or a HARQ retransmission
//! request. The 16-bit polynomial is provided for smaller test blocks.

use serde::{Deserialize, Serialize};

/// A bit-serial CRC defined by its generator polynomial.
///
/// The polynomial is given without the leading `x^width` term, MSB-first
/// (e.g. gCRC24 → `0x80_0063`).
///
/// # Example
///
/// ```
/// use hspa_phy::crc::Crc;
///
/// let crc = Crc::gcrc24();
/// let data = vec![1u8, 0, 1, 1, 0, 0, 1, 0, 1];
/// let block = crc.attach(&data);
/// assert_eq!(block.len(), data.len() + 24);
/// assert!(crc.check(&block));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crc {
    width: u8,
    poly: u32,
}

impl Crc {
    /// The 3GPP 24-bit CRC `D²⁴ + D²³ + D⁶ + D⁵ + D + 1`.
    pub fn gcrc24() -> Self {
        Self {
            width: 24,
            poly: 0x80_0063,
        }
    }

    /// The 3GPP 16-bit CRC `D¹⁶ + D¹² + D⁵ + 1` (CCITT).
    pub fn gcrc16() -> Self {
        Self {
            width: 16,
            poly: 0x1021,
        }
    }

    /// Creates a CRC from an explicit width and polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=31`.
    pub fn new(width: u8, poly: u32) -> Self {
        assert!((1..=31).contains(&width), "CRC width must be in 1..=31");
        Self { width, poly }
    }

    /// CRC width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Computes the CRC remainder of a bit sequence (MSB-first shifting,
    /// zero initial state, as specified by 25.212).
    pub fn remainder(&self, bits: &[u8]) -> u32 {
        let mask = (1u32 << self.width) - 1;
        let top = 1u32 << (self.width - 1);
        let mut reg = 0u32;
        for &b in bits {
            debug_assert!(b <= 1, "non-binary input bit");
            let fb = ((reg & top) != 0) ^ (b != 0);
            reg = (reg << 1) & mask;
            if fb {
                reg ^= self.poly & mask;
            }
        }
        reg
    }

    /// Appends the CRC parity bits (MSB first) to a copy of `data`.
    pub fn attach(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() + self.width as usize);
        self.attach_into(data, &mut out);
        out
    }

    /// Allocation-free [`Crc::attach`]: clears `out` and fills it with
    /// `data` followed by the parity bits, reusing capacity.
    pub fn attach_into(&self, data: &[u8], out: &mut Vec<u8>) {
        let rem = self.remainder(data);
        out.clear();
        out.extend_from_slice(data);
        out.extend((0..self.width).rev().map(|i| ((rem >> i) & 1) as u8));
    }

    /// Checks a block produced by [`Crc::attach`].
    ///
    /// Returns `false` for blocks shorter than the CRC itself.
    pub fn check(&self, block: &[u8]) -> bool {
        if block.len() < self.width as usize {
            return false;
        }
        self.remainder(block) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn attach_then_check_ok() {
        let crc = Crc::gcrc24();
        let data: Vec<u8> = (0..100).map(|i| (i * 7 % 3 == 0) as u8).collect();
        assert!(crc.check(&crc.attach(&data)));
    }

    #[test]
    fn single_bit_error_detected() {
        let crc = Crc::gcrc24();
        let data: Vec<u8> = (0..64).map(|i| (i % 5 == 0) as u8).collect();
        let block = crc.attach(&data);
        for pos in 0..block.len() {
            let mut bad = block.clone();
            bad[pos] ^= 1;
            assert!(!crc.check(&bad), "missed single-bit error at {pos}");
        }
    }

    #[test]
    fn burst_errors_detected() {
        let crc = Crc::gcrc16();
        let data: Vec<u8> = (0..48).map(|i| (i % 3 == 0) as u8).collect();
        let block = crc.attach(&data);
        // All bursts up to the CRC width are detected by construction.
        for start in 0..block.len() - 16 {
            let mut bad = block.clone();
            for b in bad.iter_mut().skip(start).take(16) {
                *b ^= 1;
            }
            assert!(!crc.check(&bad), "missed burst at {start}");
        }
    }

    #[test]
    fn zero_data_nonzero_appended() {
        // All-zero data has zero remainder: block is all zeros and checks.
        let crc = Crc::gcrc24();
        let block = crc.attach(&[0u8; 40]);
        assert!(block.iter().all(|&b| b == 0));
        assert!(crc.check(&block));
    }

    #[test]
    fn short_block_fails() {
        let crc = Crc::gcrc24();
        assert!(!crc.check(&[0u8; 10]));
    }

    #[test]
    fn known_ccitt_vector() {
        // CRC-16/CCITT (init 0) of ASCII "123456789" is 0x31C3.
        let crc = Crc::gcrc16();
        let mut bits = Vec::new();
        for byte in b"123456789" {
            for i in (0..8).rev() {
                bits.push((byte >> i) & 1);
            }
        }
        assert_eq!(crc.remainder(&bits), 0x31c3);
    }

    proptest! {
        #[test]
        fn roundtrip_always_checks(data in proptest::collection::vec(0u8..2, 1..200)) {
            let crc = Crc::gcrc24();
            prop_assert!(crc.check(&crc.attach(&data)));
        }

        #[test]
        fn flip_always_detected_within_distance(data in proptest::collection::vec(0u8..2, 24..120),
                                                pos in 0usize..120) {
            let crc = Crc::gcrc24();
            let block = crc.attach(&data);
            let pos = pos % block.len();
            let mut bad = block;
            bad[pos] ^= 1;
            prop_assert!(!crc.check(&bad));
        }
    }
}
