//! Time-correlated Rayleigh fading (Jakes sum-of-sinusoids).
//!
//! The block-fading models draw independent channel realizations per
//! transmission — appropriate when the HARQ round trip exceeds the
//! coherence time. At low terminal speeds consecutive retransmissions
//! see *correlated* fades, which weakens HARQ's time diversity. This
//! module provides a Jakes-spectrum tap process so that effect can be
//! studied.
//!
//! The process itself is immutable: a realization is a pure function of
//! the (randomly drawn, per-transport-block) time origin and the
//! transmission attempt, exposed through
//! [`ChannelModel::block_phase`] / [`ChannelModel::realize_attempt`].
//! Earlier revisions kept a shared advancing clock behind a mutex; that
//! made fades depend on global call order, which breaks the Monte-Carlo
//! engine's bit-identical-across-threads guarantee, so the clock is
//! gone: each packet draws its own time origin from its own RNG stream
//! and attempts advance deterministically from there.

use dsp::stats::db_to_linear;
use dsp::Complex64;
use rand::rngs::StdRng;
use rand::Rng;

use super::{ChannelModel, ChannelRealization};

/// One Jakes sum-of-sinusoids fading process (a single tap).
#[derive(Debug, Clone)]
struct JakesProcess {
    /// Per-oscillator angular Doppler (rad per unit time).
    omegas: Vec<f64>,
    /// Per-oscillator initial phases.
    phases: Vec<f64>,
    /// Mean power of the tap.
    power: f64,
}

impl JakesProcess {
    fn new(power: f64, doppler: f64, n_osc: usize, rng: &mut StdRng) -> Self {
        use std::f64::consts::PI;
        let omegas = (0..n_osc)
            .map(|k| {
                // Arrival angles spread over the circle with random jitter.
                let alpha = 2.0 * PI * (k as f64 + rng.gen::<f64>()) / n_osc as f64;
                2.0 * PI * doppler * alpha.cos()
            })
            .collect();
        let phases = (0..n_osc).map(|_| rng.gen::<f64>() * 2.0 * PI).collect();
        Self {
            omegas,
            phases,
            power,
        }
    }

    fn sample(&self, t: f64) -> Complex64 {
        let n = self.omegas.len() as f64;
        let mut acc = Complex64::ZERO;
        for (&w, &p) in self.omegas.iter().zip(&self.phases) {
            acc += Complex64::from_polar(1.0, w * t + p);
        }
        acc.scale((self.power / n).sqrt())
    }
}

/// A time-correlated multipath channel: within one transport block,
/// transmission `attempt` samples the Jakes process at
/// `block_phase + attempt · doppler_step`, so retransmissions see
/// correlated (not independent) fades, while different blocks draw
/// independent random time origins.
///
/// # Example
///
/// ```
/// use hspa_phy::channel::{ChannelModel, CorrelatedFadingChannel};
/// use dsp::rng::seeded;
///
/// let ch = CorrelatedFadingChannel::new(&[1.0], 0.01, 6);
/// let mut rng = seeded(1);
/// let phase = ch.block_phase(&mut rng);
/// let a = ch.realize_attempt(10.0, phase, 0, &mut rng);
/// let b = ch.realize_attempt(10.0, phase, 1, &mut rng);
/// // Slow fading: consecutive transmissions are similar.
/// assert!((a.taps[0] - b.taps[0]).norm() < 0.5);
/// ```
#[derive(Debug)]
pub struct CorrelatedFadingChannel {
    taps: Vec<JakesProcess>,
    /// Normalized Doppler per HARQ round trip (f_d · T_rtt).
    step: f64,
}

/// Spread of random block time origins (in round-trip units): large
/// versus the coherence time at any studied Doppler, so distinct blocks
/// are effectively independent drops.
const PHASE_SPREAD: f64 = 4096.0;

impl CorrelatedFadingChannel {
    /// Creates the channel from a power profile (will be normalized),
    /// a normalized Doppler-per-round-trip `doppler_step`, and a
    /// generator seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty or all-zero, or `doppler_step` is
    /// not positive and finite.
    pub fn new(power_profile: &[f64], doppler_step: f64, seed: u64) -> Self {
        assert!(!power_profile.is_empty(), "need at least one tap");
        assert!(
            doppler_step.is_finite() && doppler_step > 0.0,
            "doppler step must be positive"
        );
        let total: f64 = power_profile.iter().sum();
        assert!(total > 0.0, "profile must carry energy");
        let mut rng = dsp::rng::seeded(seed);
        let taps = power_profile
            .iter()
            .map(|&p| JakesProcess::new(p / total, 1.0, 16, &mut rng))
            .collect();
        Self {
            taps,
            step: doppler_step,
        }
    }
}

impl ChannelModel for CorrelatedFadingChannel {
    /// Independent drop: a fresh random time origin per call.
    fn realize(&self, snr_db: f64, rng: &mut StdRng) -> ChannelRealization {
        let phase = self.block_phase(rng);
        self.realize_attempt(snr_db, phase, 0, rng)
    }

    fn block_phase(&self, rng: &mut StdRng) -> f64 {
        rng.gen::<f64>() * PHASE_SPREAD
    }

    fn realize_attempt(
        &self,
        snr_db: f64,
        block_phase: f64,
        attempt: usize,
        _rng: &mut StdRng,
    ) -> ChannelRealization {
        let t = block_phase + attempt as f64 * self.step;
        ChannelRealization {
            taps: self.taps.iter().map(|p| p.sample(t)).collect(),
            noise_var: 1.0 / db_to_linear(snr_db),
        }
    }

    fn realize_attempt_into(
        &self,
        snr_db: f64,
        block_phase: f64,
        attempt: usize,
        _rng: &mut StdRng,
        out: &mut ChannelRealization,
    ) {
        let t = block_phase + attempt as f64 * self.step;
        out.taps.clear();
        out.taps.extend(self.taps.iter().map(|p| p.sample(t)));
        out.noise_var = 1.0 / db_to_linear(snr_db);
    }

    fn name(&self) -> &str {
        "Jakes correlated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::rng::seeded;

    #[test]
    fn mean_power_is_normalized() {
        let ch = CorrelatedFadingChannel::new(&[0.7, 0.3], 0.23, 3);
        let mut rng = seeded(0);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| ch.realize(10.0, &mut rng).energy())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.15, "mean energy {mean}");
    }

    #[test]
    fn slow_fading_is_correlated_fast_is_not() {
        let measure = |step: f64| -> f64 {
            let ch = CorrelatedFadingChannel::new(&[1.0], step, 7);
            let mut rng = seeded(0);
            let phase = ch.block_phase(&mut rng);
            let samples: Vec<Complex64> = (0..600)
                .map(|k| ch.realize_attempt(10.0, phase, k, &mut rng).taps[0])
                .collect();
            // Lag-1 autocorrelation magnitude.
            let num: Complex64 = samples.windows(2).map(|w| w[1] * w[0].conj()).sum();
            let den: f64 = samples.iter().map(|s| s.norm_sqr()).sum();
            (num.norm() / den).min(1.0)
        };
        let slow = measure(0.001);
        let fast = measure(0.41);
        assert!(slow > 0.95, "slow fading correlation {slow}");
        assert!(fast < 0.6, "fast fading correlation {fast}");
    }

    #[test]
    fn realizations_are_pure_in_phase_and_attempt() {
        // No hidden clock: the same (phase, attempt) always yields the
        // same realization, regardless of interleaved calls.
        let ch = CorrelatedFadingChannel::new(&[1.0], 0.1, 5);
        let mut rng = seeded(0);
        let phase = ch.block_phase(&mut rng);
        let a = ch.realize_attempt(10.0, phase, 2, &mut rng);
        let _interleaved = ch.realize_attempt(10.0, phase + 7.0, 1, &mut rng);
        let b = ch.realize_attempt(10.0, phase, 2, &mut rng);
        assert_eq!(a, b, "same phase and attempt, same sample");
    }

    #[test]
    fn blocks_draw_distinct_phases() {
        let ch = CorrelatedFadingChannel::new(&[1.0], 0.1, 5);
        let mut rng = seeded(9);
        let a = ch.block_phase(&mut rng);
        let b = ch.block_phase(&mut rng);
        assert_ne!(a, b, "independent drops must differ");
        assert!((0.0..PHASE_SPREAD).contains(&a));
    }

    #[test]
    fn envelope_is_rayleigh_like() {
        // The Jakes envelope should fade below -10 dB of its mean a
        // non-trivial fraction of the time (≈10% for Rayleigh).
        let ch = CorrelatedFadingChannel::new(&[1.0], 0.37, 11);
        let mut rng = seeded(0);
        let n = 5000;
        let deep = (0..n)
            .filter(|_| ch.realize(10.0, &mut rng).energy() < 0.1)
            .count();
        let frac = deep as f64 / n as f64;
        assert!((0.03..0.25).contains(&frac), "deep-fade fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_doppler_rejected() {
        let _ = CorrelatedFadingChannel::new(&[1.0], 0.0, 0);
    }
}
