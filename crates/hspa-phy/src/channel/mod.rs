//! Mobile channel models.
//!
//! The paper evaluates over "a standard-compliant multipath channel"; we
//! provide an ITU tapped-delay-line Rayleigh block-fading model (the
//! standard simulation substitute), plus AWGN and a deterministic ISI
//! channel for tests. Models operate on the symbol-spaced baseband
//! stream; each call to [`ChannelModel::realize`] draws a new independent
//! block-fading realization.

mod correlated;

pub use correlated::CorrelatedFadingChannel;

use dsp::filter::convolve_complex;
use dsp::rng::{complex_gaussian, seeded};
use dsp::stats::db_to_linear;
use dsp::Complex64;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One realized channel: taps fixed for the block, plus the noise level.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelRealization {
    /// Symbol-spaced impulse response.
    pub taps: Vec<Complex64>,
    /// Complex noise variance per received sample.
    pub noise_var: f64,
}

impl ChannelRealization {
    /// An empty realization for [`ChannelModel::realize_attempt_into`]
    /// to fill; the tap vector grows to steady-state size on first use.
    pub fn empty() -> Self {
        Self {
            taps: Vec::new(),
            noise_var: 1.0,
        }
    }

    /// Propagates `symbols` through the channel: convolution with the
    /// taps plus white Gaussian noise, truncated to the input length.
    pub fn apply(&self, symbols: &[Complex64], rng: &mut StdRng) -> Vec<Complex64> {
        let mut out = convolve_complex(symbols, &self.taps);
        out.truncate(symbols.len());
        for y in out.iter_mut() {
            *y += complex_gaussian(rng, self.noise_var);
        }
        out
    }

    /// Allocation-free [`ChannelRealization::apply`]: clears `out` and
    /// fills it with the received samples, convolving directly into the
    /// reused buffer (truncated to the input length) before adding noise.
    pub fn apply_into(&self, symbols: &[Complex64], rng: &mut StdRng, out: &mut Vec<Complex64>) {
        out.clear();
        if let [h] = self.taps[..] {
            out.reserve(symbols.len());
            for &s in symbols {
                out.push(s * h + complex_gaussian(rng, self.noise_var));
            }
            return;
        }
        // Same accumulation order as `convolve_complex` so both paths
        // are bit-identical, not merely close.
        out.resize(symbols.len(), Complex64::ZERO);
        for (i, &s) in symbols.iter().enumerate() {
            for (y, &h) in out[i..].iter_mut().zip(&self.taps) {
                *y += s * h;
            }
        }
        for y in out.iter_mut() {
            *y += complex_gaussian(rng, self.noise_var);
        }
    }

    /// Total tap energy `Σ|h|²`.
    pub fn energy(&self) -> f64 {
        self.taps.iter().map(|t| t.norm_sqr()).sum()
    }
}

/// A channel model that can draw independent block realizations.
///
/// Models must be stateless: a realization may depend only on the
/// arguments (including the caller's RNG), never on interior mutable
/// state, so that the Monte-Carlo engine's per-packet RNG streams fully
/// determine results regardless of thread interleaving.
pub trait ChannelModel {
    /// Draws a channel realization for one block at the given SNR (dB,
    /// signal power over noise power at the receiver input).
    fn realize(&self, snr_db: f64, rng: &mut StdRng) -> ChannelRealization;

    /// Draws the per-transport-block fading time origin. Memoryless
    /// channels ignore it (default `0.0`, consuming no randomness);
    /// time-correlated channels draw a random drop time here, once per
    /// block.
    fn block_phase(&self, rng: &mut StdRng) -> f64 {
        let _ = rng;
        0.0
    }

    /// Realization for transmission `attempt` (0-based) of the block
    /// whose time origin is `block_phase`. The default ignores both and
    /// draws an independent realization — correct for channels where
    /// HARQ round trips exceed the coherence time.
    fn realize_attempt(
        &self,
        snr_db: f64,
        block_phase: f64,
        attempt: usize,
        rng: &mut StdRng,
    ) -> ChannelRealization {
        let _ = (block_phase, attempt);
        self.realize(snr_db, rng)
    }

    /// Allocation-free [`ChannelModel::realize_attempt`]: fills `out`
    /// (reusing its tap vector) instead of returning a fresh
    /// realization. The default delegates to `realize_attempt` and
    /// copies — models on the Monte-Carlo hot path override it to write
    /// taps in place. Must consume the RNG identically to
    /// `realize_attempt`.
    fn realize_attempt_into(
        &self,
        snr_db: f64,
        block_phase: f64,
        attempt: usize,
        rng: &mut StdRng,
        out: &mut ChannelRealization,
    ) {
        let real = self.realize_attempt(snr_db, block_phase, attempt, rng);
        out.taps.clear();
        out.taps.extend_from_slice(&real.taps);
        out.noise_var = real.noise_var;
    }

    /// Human-readable model name (for reports).
    fn name(&self) -> &str;
}

/// Frequency-flat AWGN: a single unit tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AwgnChannel;

impl ChannelModel for AwgnChannel {
    // alloc: cold(allocating trait path; hot-path callers use realize_attempt_into)
    fn realize(&self, snr_db: f64, _rng: &mut StdRng) -> ChannelRealization {
        ChannelRealization {
            taps: vec![Complex64::ONE],
            noise_var: 1.0 / db_to_linear(snr_db),
        }
    }

    fn realize_attempt_into(
        &self,
        snr_db: f64,
        _block_phase: f64,
        _attempt: usize,
        _rng: &mut StdRng,
        out: &mut ChannelRealization,
    ) {
        out.taps.clear();
        out.taps.push(Complex64::ONE);
        out.noise_var = 1.0 / db_to_linear(snr_db);
    }

    fn name(&self) -> &str {
        "AWGN"
    }
}

/// ITU power-delay profiles (delays in ns, powers in dB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ItuProfile {
    /// ITU Pedestrian A — mild dispersion.
    #[default]
    PedestrianA,
    /// ITU Vehicular A — strong dispersion, the demanding test case.
    VehicularA,
}

impl ItuProfile {
    /// `(delay_ns, power_db)` pairs of the profile.
    pub fn taps(self) -> &'static [(f64, f64)] {
        match self {
            ItuProfile::PedestrianA => &[(0.0, 0.0), (110.0, -9.7), (190.0, -19.2), (410.0, -22.8)],
            ItuProfile::VehicularA => &[
                (0.0, 0.0),
                (310.0, -1.0),
                (710.0, -9.0),
                (1090.0, -10.0),
                (1730.0, -15.0),
                (2510.0, -20.0),
            ],
        }
    }
}

impl std::fmt::Display for ItuProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItuProfile::PedestrianA => f.write_str("ITU Pedestrian A"),
            ItuProfile::VehicularA => f.write_str("ITU Vehicular A"),
        }
    }
}

/// Rayleigh block-fading tapped-delay-line channel.
///
/// Each realization draws independent complex-Gaussian tap gains with the
/// profile's power weighting, binned to the symbol period, and normalizes
/// the *average* profile energy to 1 so SNR is preserved in the mean
/// (individual realizations fade up and down, as they should).
///
/// The binned power profile is computed once at construction and cached,
/// so drawing a realization performs no per-call profile work (and, via
/// [`ChannelModel::realize_attempt_into`], no allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathChannel {
    profile: ItuProfile,
    /// Symbol period in nanoseconds (HSDPA chip: 260.4 ns; SF16 symbol:
    /// 4166 ns).
    symbol_period_ns: f64,
    /// Cached binned average power profile (unit total energy).
    bins: Vec<f64>,
}

impl MultipathChannel {
    /// Creates the channel for an ITU profile at the given symbol period.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive.
    pub fn new(profile: ItuProfile, symbol_period_ns: f64) -> Self {
        assert!(
            symbol_period_ns.is_finite() && symbol_period_ns > 0.0,
            "symbol period must be positive"
        );
        let bins = bin_profile(profile, symbol_period_ns);
        Self {
            profile,
            symbol_period_ns,
            bins,
        }
    }

    /// Chip-spaced Vehicular A at the UMTS chip rate (3.84 Mcps) — the
    /// dispersive configuration used for equalizer stress tests.
    pub fn vehicular_a_chip_rate() -> Self {
        Self::new(ItuProfile::VehicularA, 260.416_7)
    }

    /// Pedestrian A at the SF16 symbol rate — mild, near-flat fading.
    pub fn pedestrian_a_symbol_rate() -> Self {
        Self::new(ItuProfile::PedestrianA, 16.0 * 260.416_7)
    }

    /// The binned average power profile (unit total energy).
    pub fn power_profile(&self) -> Vec<f64> {
        self.bins.clone()
    }
}

/// Bins an ITU profile to the symbol period and normalizes total energy
/// to 1 (the construction-time half of [`MultipathChannel`]).
fn bin_profile(profile: ItuProfile, symbol_period_ns: f64) -> Vec<f64> {
    let taps = profile.taps();
    let max_delay = taps.last().map(|&(d, _)| d).unwrap_or(0.0);
    let n_bins = (max_delay / symbol_period_ns).floor() as usize + 1;
    let mut bins = vec![0.0f64; n_bins];
    for &(delay, power_db) in taps {
        let bin = (delay / symbol_period_ns).round() as usize;
        bins[bin.min(n_bins - 1)] += db_to_linear(power_db);
    }
    let total: f64 = bins.iter().sum();
    for b in bins.iter_mut() {
        *b /= total;
    }
    bins
}

impl ChannelModel for MultipathChannel {
    fn realize(&self, snr_db: f64, rng: &mut StdRng) -> ChannelRealization {
        let taps: Vec<Complex64> = self
            .bins
            .iter()
            .map(|&p| complex_gaussian(rng, p))
            .collect();
        ChannelRealization {
            taps,
            noise_var: 1.0 / db_to_linear(snr_db),
        }
    }

    fn realize_attempt_into(
        &self,
        snr_db: f64,
        _block_phase: f64,
        _attempt: usize,
        rng: &mut StdRng,
        out: &mut ChannelRealization,
    ) {
        out.taps.clear();
        out.taps
            .extend(self.bins.iter().map(|&p| complex_gaussian(rng, p)));
        out.noise_var = 1.0 / db_to_linear(snr_db);
    }

    fn name(&self) -> &str {
        match self.profile {
            ItuProfile::PedestrianA => "Rayleigh PedA",
            ItuProfile::VehicularA => "Rayleigh VehA",
        }
    }
}

/// A fixed, deterministic ISI channel — reproducible equalizer tests.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticIsiChannel {
    /// Fixed taps (should have roughly unit energy).
    pub taps: Vec<Complex64>,
}

impl StaticIsiChannel {
    /// The classic Proakis-B-like mild ISI test channel.
    pub fn mild() -> Self {
        Self {
            taps: vec![
                Complex64::new(0.9, 0.0),
                Complex64::new(0.38, 0.12),
                Complex64::new(-0.15, 0.08),
            ],
        }
    }
}

impl ChannelModel for StaticIsiChannel {
    // alloc: cold(allocating trait path; hot-path callers use realize_attempt_into)
    fn realize(&self, snr_db: f64, _rng: &mut StdRng) -> ChannelRealization {
        ChannelRealization {
            taps: self.taps.clone(),
            noise_var: 1.0 / db_to_linear(snr_db),
        }
    }

    fn name(&self) -> &str {
        "static ISI"
    }
}

/// Convenience: pass unit-energy symbols through a freshly realized
/// channel (used in examples and tests).
pub fn transmit(
    model: &dyn ChannelModel,
    symbols: &[Complex64],
    snr_db: f64,
    seed: u64,
) -> (ChannelRealization, Vec<Complex64>) {
    let mut rng = seeded(seed);
    let real = model.realize(snr_db, &mut rng);
    let rx = real.apply(symbols, &mut rng);
    (real, rx)
}

/// Measures the empirical SNR of `rx` versus the noiseless reference.
pub fn empirical_snr_db(rx: &[Complex64], clean: &[Complex64]) -> f64 {
    let sig: f64 = clean.iter().map(|s| s.norm_sqr()).sum();
    let noise: f64 = rx
        .iter()
        .zip(clean)
        .map(|(&y, &s)| (y - s).norm_sqr())
        .sum();
    dsp::stats::linear_to_db(sig / noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awgn_preserves_signal_plus_noise() {
        let mut rng = seeded(1);
        let model = AwgnChannel;
        let real = model.realize(10.0, &mut rng);
        assert_eq!(real.taps.len(), 1);
        let n = 20_000;
        let symbols = vec![Complex64::ONE; n];
        let rx = real.apply(&symbols, &mut rng);
        let clean = symbols.clone();
        let snr = empirical_snr_db(&rx, &clean);
        assert!((snr - 10.0).abs() < 0.3, "measured {snr} dB");
    }

    #[test]
    fn multipath_profile_normalized() {
        for ch in [
            MultipathChannel::vehicular_a_chip_rate(),
            MultipathChannel::pedestrian_a_symbol_rate(),
        ] {
            let p = ch.power_profile();
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn veha_chip_rate_is_dispersive() {
        let ch = MultipathChannel::vehicular_a_chip_rate();
        let p = ch.power_profile();
        assert!(
            p.len() >= 9,
            "VehA at chip rate spans ~10 chips, got {}",
            p.len()
        );
        let significant = p.iter().filter(|&&x| x > 0.01).count();
        assert!(significant >= 4, "expected several significant taps");
    }

    #[test]
    fn peda_symbol_rate_is_nearly_flat() {
        let ch = MultipathChannel::pedestrian_a_symbol_rate();
        let p = ch.power_profile();
        assert_eq!(p.len(), 1, "PedA at SF16 symbol rate collapses to one tap");
    }

    #[test]
    fn fading_mean_energy_is_unity() {
        let ch = MultipathChannel::vehicular_a_chip_rate();
        let mut rng = seeded(3);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| ch.realize(10.0, &mut rng).energy())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean tap energy {mean}");
    }

    #[test]
    fn realizations_are_independent() {
        let ch = MultipathChannel::vehicular_a_chip_rate();
        let mut rng = seeded(4);
        let a = ch.realize(10.0, &mut rng);
        let b = ch.realize(10.0, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn apply_into_matches_apply() {
        // Same RNG state in, same received samples out — for both the
        // flat fast path and the dispersive convolution path.
        for ch in [
            MultipathChannel::pedestrian_a_symbol_rate(),
            MultipathChannel::vehicular_a_chip_rate(),
        ] {
            let mut rng = seeded(77);
            let real = ch.realize(12.0, &mut rng);
            let tx = dsp::rng::complex_gaussian_vec(&mut rng, 64, 1.0);
            let mut rng_a = seeded(5);
            let mut rng_b = seeded(5);
            let a = real.apply(&tx, &mut rng_a);
            let mut b = Vec::new();
            real.apply_into(&tx, &mut rng_b, &mut b);
            assert_eq!(a, b, "{}", ch.name());
        }
    }

    #[test]
    fn static_channel_is_deterministic() {
        let ch = StaticIsiChannel::mild();
        let mut r1 = seeded(5);
        let mut r2 = seeded(99);
        assert_eq!(ch.realize(8.0, &mut r1).taps, ch.realize(8.0, &mut r2).taps);
    }

    #[test]
    fn transmit_reproducible() {
        let model = MultipathChannel::vehicular_a_chip_rate();
        let symbols = dsp::rng::complex_gaussian_vec(&mut seeded(7), 64, 1.0);
        let (r1, y1) = transmit(&model, &symbols, 12.0, 42);
        let (r2, y2) = transmit(&model, &symbols, 12.0, 42);
        assert_eq!(r1, r2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn noise_var_tracks_snr() {
        let mut rng = seeded(8);
        let low = AwgnChannel.realize(0.0, &mut rng).noise_var;
        let high = AwgnChannel.realize(20.0, &mut rng).noise_var;
        assert!((low / high - 100.0).abs() < 1e-9);
    }
}
