//! Bit-vector helpers shared by the PHY blocks.
//!
//! Bits are represented as `u8` values restricted to `{0, 1}` in plain
//! `Vec<u8>`s — simple, debuggable, and fast enough for link simulation.

/// Validates that a slice contains only binary values.
///
/// # Panics
///
/// Panics when any element is not 0 or 1.
pub fn assert_binary(bits: &[u8]) {
    assert!(
        bits.iter().all(|&b| b <= 1),
        "bit vector contains non-binary values"
    );
}

/// XOR of two equal-length bit slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x ^ y).collect()
}

/// Number of positions where the slices disagree.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Packs up to 32 bits (MSB first) into a `u32`.
///
/// # Panics
///
/// Panics if `bits.len() > 32` or a value is non-binary.
pub fn pack_msb_first(bits: &[u8]) -> u32 {
    assert!(bits.len() <= 32, "cannot pack more than 32 bits");
    assert_binary(bits);
    bits.iter().fold(0u32, |acc, &b| (acc << 1) | b as u32)
}

/// Unpacks `n` bits (MSB first) from a `u32`.
pub fn unpack_msb_first(value: u32, n: usize) -> Vec<u8> {
    assert!(n <= 32, "cannot unpack more than 32 bits");
    (0..n).rev().map(|i| ((value >> i) & 1) as u8).collect()
}

/// Maps a bit to the BPSK-style antipodal value: bit 0 → `+1.0`,
/// bit 1 → `-1.0` (matching the crate's LLR sign convention).
#[inline]
pub fn to_antipodal(bit: u8) -> f64 {
    1.0 - 2.0 * bit as f64
}

/// Hard decision on an LLR: positive → bit 0.
#[inline]
pub fn hard_decision(llr: f64) -> u8 {
    if llr >= 0.0 {
        0
    } else {
        1
    }
}

/// Hard decisions over a slice of LLRs.
pub fn hard_decisions(llrs: &[f64]) -> Vec<u8> {
    llrs.iter().map(|&l| hard_decision(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let v = pack_msb_first(&bits);
        assert_eq!(v, 0b1011_0010);
        assert_eq!(unpack_msb_first(v, 8), bits);
    }

    #[test]
    fn xor_and_distance() {
        let a = [1, 0, 1, 1];
        let b = [1, 1, 0, 1];
        assert_eq!(xor(&a, &b), vec![0, 1, 1, 0]);
        assert_eq!(hamming_distance(&a, &b), 2);
    }

    #[test]
    fn antipodal_convention() {
        assert_eq!(to_antipodal(0), 1.0);
        assert_eq!(to_antipodal(1), -1.0);
        assert_eq!(hard_decision(2.5), 0);
        assert_eq!(hard_decision(-0.1), 1);
        assert_eq!(hard_decision(0.0), 0);
    }

    #[test]
    fn hard_decisions_vector() {
        assert_eq!(hard_decisions(&[1.0, -1.0, 0.5]), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "non-binary")]
    fn non_binary_rejected() {
        assert_binary(&[0, 1, 2]);
    }
}
