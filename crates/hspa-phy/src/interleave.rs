//! The second (channel) interleaver (TS 25.212 §4.2.11).
//!
//! A fixed 30-column block interleaver applied to the rate-matched bits of
//! each transmission before modulation: bits are written row by row into a
//! 30-column matrix, the columns are permuted by the standard pattern, and
//! bits are read out column by column (padding pruned).

/// The standard inter-column permutation for the 30-column interleaver.
pub const COLUMN_PERMUTATION: [usize; 30] = [
    0, 20, 10, 5, 15, 25, 3, 13, 23, 8, 18, 28, 1, 11, 21, 6, 16, 26, 4, 14, 24, 19, 9, 29, 12, 2,
    7, 22, 27, 17,
];

/// The 30-column channel interleaver for a given block length.
///
/// # Example
///
/// ```
/// use hspa_phy::interleave::ChannelInterleaver;
///
/// let il = ChannelInterleaver::new(100);
/// let data: Vec<u32> = (0..100).collect();
/// let mixed = il.interleave(&data);
/// assert_ne!(mixed, data);
/// assert_eq!(il.deinterleave(&mixed), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelInterleaver {
    len: usize,
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl ChannelInterleaver {
    /// Builds the interleaver for `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "interleaver length must be positive");
        let cols = COLUMN_PERMUTATION.len();
        let rows = len.div_ceil(cols);
        let padded = rows * cols;
        // Matrix position (r, c) holds input index r*cols + c (or padding).
        // Read out column by column in permuted column order.
        let mut perm = Vec::with_capacity(len);
        for &c in COLUMN_PERMUTATION.iter() {
            for r in 0..rows {
                let src = r * cols + c;
                if src < len {
                    perm.push(src);
                }
            }
        }
        debug_assert_eq!(perm.len(), len);
        let _ = padded;
        let mut inv = vec![0usize; len];
        for (out_pos, &in_pos) in perm.iter().enumerate() {
            inv[in_pos] = out_pos;
        }
        Self { len, perm, inv }
    }

    /// Interleaver block length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for the degenerate single-bit interleaver.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Applies the permutation: `output[m] = input[perm[m]]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the block length.
    pub fn interleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.interleave_into(input, &mut out);
        out
    }

    /// Allocation-free [`ChannelInterleaver::interleave`]: clears `out`
    /// and fills it, reusing capacity.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the block length.
    pub fn interleave_into<T: Copy>(&self, input: &[T], out: &mut Vec<T>) {
        assert_eq!(input.len(), self.len, "interleaver length mismatch");
        out.clear();
        out.extend(self.perm.iter().map(|&i| input[i]));
    }

    /// Applies the inverse permutation.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the block length.
    pub fn deinterleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.deinterleave_into(input, &mut out);
        out
    }

    /// Allocation-free [`ChannelInterleaver::deinterleave`]: clears `out`
    /// and fills it, reusing capacity.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the block length.
    pub fn deinterleave_into<T: Copy>(&self, input: &[T], out: &mut Vec<T>) {
        assert_eq!(input.len(), self.len, "deinterleaver length mismatch");
        out.clear();
        out.extend(self.inv.iter().map(|&i| input[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn permutation_pattern_is_valid() {
        let mut p = COLUMN_PERMUTATION;
        p.sort_unstable();
        assert_eq!(p, core::array::from_fn::<usize, 30, _>(|i| i));
    }

    #[test]
    fn is_a_permutation_for_odd_lengths() {
        for len in [1usize, 7, 29, 30, 31, 59, 60, 100, 961, 960] {
            let il = ChannelInterleaver::new(len);
            let mut sorted = il.perm.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), len, "len {len}");
        }
    }

    #[test]
    fn roundtrip() {
        let il = ChannelInterleaver::new(257);
        let data: Vec<u32> = (0..257).collect();
        assert_eq!(il.deinterleave(&il.interleave(&data)), data);
    }

    #[test]
    fn disperses_bursts() {
        // A burst of 30 consecutive interleaved positions must map to bits
        // spread over many columns of the original stream.
        let len = 900;
        let il = ChannelInterleaver::new(len);
        let burst: Vec<usize> = il.perm[100..130].to_vec();
        let mut diffs: Vec<i64> = burst
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        diffs.dedup();
        // Consecutive outputs within a column differ by 30 (row stride);
        // across a column boundary they jump. Either way no two adjacent
        // original bits are adjacent after interleaving.
        assert!(burst.windows(2).all(|w| w[0].abs_diff(w[1]) >= 5));
    }

    #[test]
    fn deterministic() {
        assert_eq!(ChannelInterleaver::new(123), ChannelInterleaver::new(123));
    }

    proptest! {
        #[test]
        fn always_bijective(len in 1usize..2000) {
            let il = ChannelInterleaver::new(len);
            let data: Vec<usize> = (0..len).collect();
            prop_assert_eq!(il.deinterleave(&il.interleave(&data)), data);
        }
    }
}
