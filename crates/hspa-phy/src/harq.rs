//! Hybrid ARQ: LLR buffering, soft combining and throughput accounting.
//!
//! The HARQ entity is the heart of the paper's study: soft LLRs of every
//! received transmission are stored in the LLR memory, combined with
//! retransmissions, and fed to the turbo decoder. The storage backend is
//! abstracted behind [`LlrBuffer`] so the system simulator can swap the
//! ideal buffer for one built on defective silicon
//! (`resilience-core::FaultyLlrBuffer`) without touching the protocol
//! logic.

use serde::{Deserialize, Serialize};

use crate::rate_match::{RateMatcher, RedundancyVersion};

/// Soft-value storage used by the HARQ process.
///
/// One buffer instance holds the combined LLRs of one transport block
/// (codeword-domain, `3K + 12` values). Implementations may be perfect
/// (plain memory) or lossy (quantized storage on faulty SRAM) — the HARQ
/// process is agnostic.
pub trait LlrBuffer {
    /// Number of LLR slots.
    fn capacity(&self) -> usize;

    /// Overwrites the stored LLRs (length must equal `capacity`).
    fn store(&mut self, llrs: &[f64]);

    /// Reads all stored LLRs back (possibly corrupted/quantized).
    fn load(&self) -> Vec<f64>;

    /// Allocation-free [`LlrBuffer::load`]: clears `out` and fills it
    /// with the stored LLRs, reusing capacity. Implementations should
    /// override the default (which goes through `load`) when they can
    /// write in place.
    fn load_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.load());
    }

    /// Stores `data` and immediately reads the buffer back into the
    /// same vector — the write-then-read round trip at the heart of
    /// soft combining, exposed as one call so lossy backends can fuse
    /// quantization, fault corruption and decode into a single sweep.
    /// Must behave exactly like [`LlrBuffer::store`] followed by
    /// [`LlrBuffer::load_into`] on the same vector (the default).
    fn store_load(&mut self, data: &mut Vec<f64>) {
        self.store(data);
        self.load_into(data);
    }

    /// Clears the buffer to zeros (new transport block).
    fn reset(&mut self);

    /// Hook called once per simulated packet with that packet's
    /// deterministic seed, *before* the HARQ process touches the buffer.
    ///
    /// Stateless backends ignore it (the default). Backends with
    /// per-read randomness (e.g. transient soft-error injection) reseed
    /// their internal generator here, which makes results independent of
    /// how packets are sharded across Monte-Carlo worker threads.
    fn begin_packet(&mut self, _packet_seed: u64) {}
}

impl<B: LlrBuffer + ?Sized> LlrBuffer for Box<B> {
    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn store(&mut self, llrs: &[f64]) {
        (**self).store(llrs);
    }

    fn load(&self) -> Vec<f64> {
        (**self).load()
    }

    fn load_into(&self, out: &mut Vec<f64>) {
        (**self).load_into(out);
    }

    fn store_load(&mut self, data: &mut Vec<f64>) {
        (**self).store_load(data);
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn begin_packet(&mut self, packet_seed: u64) {
        (**self).begin_packet(packet_seed);
    }
}

impl<B: LlrBuffer + ?Sized> LlrBuffer for &mut B {
    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn store(&mut self, llrs: &[f64]) {
        (**self).store(llrs);
    }

    fn load(&self) -> Vec<f64> {
        (**self).load()
    }

    fn load_into(&self, out: &mut Vec<f64>) {
        (**self).load_into(out);
    }

    fn store_load(&mut self, data: &mut Vec<f64>) {
        (**self).store_load(data);
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn begin_packet(&mut self, packet_seed: u64) {
        (**self).begin_packet(packet_seed);
    }
}

/// An ideal, lossless LLR buffer (the defect-free reference system).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfectLlrBuffer {
    data: Vec<f64>,
}

impl PerfectLlrBuffer {
    /// Creates a zeroed buffer with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            data: vec![0.0; capacity],
        }
    }
}

impl LlrBuffer for PerfectLlrBuffer {
    fn capacity(&self) -> usize {
        self.data.len()
    }

    fn store(&mut self, llrs: &[f64]) {
        assert_eq!(llrs.len(), self.data.len(), "buffer length mismatch");
        self.data.copy_from_slice(llrs);
    }

    fn load(&self) -> Vec<f64> {
        self.data.clone()
    }

    fn load_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.data);
    }

    fn store_load(&mut self, data: &mut Vec<f64>) {
        // Lossless storage reads back exactly what was written, so the
        // round trip is just the store.
        self.store(data);
    }

    fn reset(&mut self) {
        self.data.fill(0.0);
    }
}

/// HARQ soft-combining strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum HarqCombining {
    /// Every retransmission repeats the same RV; LLRs add up.
    Chase,
    /// Retransmissions cycle redundancy versions, filling punctured bits.
    #[default]
    IncrementalRedundancy,
}

impl HarqCombining {
    /// The redundancy version for transmission attempt `attempt` (0-based).
    pub fn rv(self, attempt: usize) -> RedundancyVersion {
        match self {
            HarqCombining::Chase => RedundancyVersion::chase(),
            HarqCombining::IncrementalRedundancy => RedundancyVersion::ir_cycle(attempt),
        }
    }
}

/// One HARQ process: combines successive transmissions of one transport
/// block through an [`LlrBuffer`].
///
/// The process borrows its rate matcher — the matcher (with its cached
/// redundancy-version index maps) is immutable shared state, so parallel
/// Monte-Carlo workers create one `HarqProcess` per packet without
/// cloning any codec tables.
///
/// # Example
///
/// ```
/// use hspa_phy::harq::{HarqProcess, HarqCombining, PerfectLlrBuffer};
/// use hspa_phy::rate_match::RateMatcher;
///
/// let rm = RateMatcher::new(100, 220);
/// let buffer = PerfectLlrBuffer::new(rm.coded_len());
/// let mut harq = HarqProcess::new(&rm, HarqCombining::IncrementalRedundancy, buffer);
/// let rx_llrs = vec![0.5; 220];
/// let combined = harq.combine_transmission(0, &rx_llrs);
/// assert_eq!(combined.len(), 312);
/// ```
#[derive(Debug, Clone)]
pub struct HarqProcess<'a, B: LlrBuffer> {
    rate_matcher: &'a RateMatcher,
    combining: HarqCombining,
    buffer: B,
}

impl<'a, B: LlrBuffer> HarqProcess<'a, B> {
    /// Creates a process over the given buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer capacity differs from the codeword length.
    pub fn new(rate_matcher: &'a RateMatcher, combining: HarqCombining, buffer: B) -> Self {
        assert_eq!(
            buffer.capacity(),
            rate_matcher.coded_len(),
            "buffer must hold one codeword of LLRs"
        );
        Self {
            rate_matcher,
            combining,
            buffer,
        }
    }

    /// The rate matcher in use.
    pub fn rate_matcher(&self) -> &RateMatcher {
        self.rate_matcher
    }

    /// The combining strategy.
    pub fn combining(&self) -> HarqCombining {
        self.combining
    }

    /// Read access to the storage backend.
    pub fn buffer(&self) -> &B {
        &self.buffer
    }

    /// Starts a new transport block (clears the soft buffer).
    pub fn start_block(&mut self) {
        self.buffer.reset();
    }

    /// Ingests the demapped LLRs of transmission `attempt` and returns the
    /// combined codeword LLRs as read back from the buffer.
    ///
    /// The flow mirrors the paper's Fig. 1(b): stored LLRs (read through
    /// the possibly-faulty memory) + de-rate-matched new LLRs → written
    /// back → read again by the decoder.
    ///
    /// # Panics
    ///
    /// Panics if `rx_llrs.len()` differs from the per-transmission length.
    pub fn combine_transmission(&mut self, attempt: usize, rx_llrs: &[f64]) -> Vec<f64> {
        let mut combined = Vec::new();
        self.combine_transmission_into(attempt, rx_llrs, &mut combined);
        combined
    }

    /// Allocation-free [`HarqProcess::combine_transmission`]: `out` is
    /// used as the working buffer and ends up holding the combined
    /// codeword LLRs as read back from storage.
    ///
    /// # Panics
    ///
    /// Panics if `rx_llrs.len()` differs from the per-transmission length.
    pub fn combine_transmission_into(
        &mut self,
        attempt: usize,
        rx_llrs: &[f64],
        out: &mut Vec<f64>,
    ) {
        let rv = self.combining.rv(attempt);
        if attempt == 0 {
            out.clear();
            out.resize(self.rate_matcher.coded_len(), 0.0);
        } else {
            self.buffer.load_into(out);
        }
        self.rate_matcher.accumulate(rx_llrs, rv, out);
        self.buffer.store_load(out);
    }
}

/// Outcome statistics of a HARQ Monte-Carlo run (one operating point).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HarqStats {
    /// Packets attempted.
    pub packets: u64,
    /// Packets delivered within the transmission budget.
    pub delivered: u64,
    /// Total transmissions used (failed packets count their full budget).
    pub transmissions: u64,
    /// `failures_at[t]` = packets still undecoded after transmission
    /// `t+1` (index 0 = after the initial transmission) — the Fig. 2 data.
    pub failures_at: Vec<u64>,
    /// Information bits per packet.
    pub info_bits: u64,
}

impl HarqStats {
    /// Creates empty statistics for a budget of `max_tx` transmissions.
    pub fn new(max_tx: usize, info_bits: usize) -> Self {
        Self {
            packets: 0,
            delivered: 0,
            transmissions: 0,
            failures_at: vec![0; max_tx],
            info_bits: info_bits as u64,
        }
    }

    /// Records one packet: `success_after` is the 1-based transmission on
    /// which it decoded, or `None` if it exhausted the budget.
    pub fn record(&mut self, success_after: Option<usize>, max_tx: usize) {
        self.packets += 1;
        match success_after {
            Some(t) => {
                assert!(t >= 1 && t <= max_tx, "success index out of range");
                self.delivered += 1;
                self.transmissions += t as u64;
                for slot in self.failures_at.iter_mut().take(t - 1) {
                    *slot += 1;
                }
            }
            None => {
                self.transmissions += max_tx as u64;
                for slot in self.failures_at.iter_mut() {
                    *slot += 1;
                }
            }
        }
    }

    /// Normalized throughput: delivered packets over transmissions used
    /// (1.0 = every transmission delivers a packet).
    pub fn normalized_throughput(&self) -> f64 {
        if self.transmissions == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.transmissions as f64
    }

    /// Average number of transmissions per packet.
    pub fn avg_transmissions(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.transmissions as f64 / self.packets as f64
    }

    /// Block error rate after transmission `t` (1-based), the Fig. 2
    /// quantity.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero or beyond the budget.
    pub fn bler_after(&self, t: usize) -> f64 {
        assert!(t >= 1 && t <= self.failures_at.len(), "transmission index");
        if self.packets == 0 {
            return 0.0;
        }
        self.failures_at[t - 1] as f64 / self.packets as f64
    }

    /// Merges another statistics block (parallel workers).
    ///
    /// # Panics
    ///
    /// Panics if the budgets differ.
    pub fn merge(&mut self, other: &HarqStats) {
        assert_eq!(self.failures_at.len(), other.failures_at.len());
        self.packets += other.packets;
        self.delivered += other.delivered;
        self.transmissions += other.transmissions;
        for (a, b) in self.failures_at.iter_mut().zip(&other.failures_at) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turbo::TurboCode;
    use dsp::rng::{random_bits, seeded};

    #[test]
    fn perfect_buffer_roundtrip() {
        let mut b = PerfectLlrBuffer::new(8);
        assert_eq!(b.capacity(), 8);
        let v: Vec<f64> = (0..8).map(|i| i as f64 - 4.0).collect();
        b.store(&v);
        assert_eq!(b.load(), v);
        b.reset();
        assert!(b.load().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn chase_combining_doubles_llrs() {
        let k = 100;
        let rm = RateMatcher::new(k, 312); // no puncturing
        let buffer = PerfectLlrBuffer::new(rm.coded_len());
        let mut harq = HarqProcess::new(&rm, HarqCombining::Chase, buffer);
        let rx = vec![1.5; 312];
        let c1 = harq.combine_transmission(0, &rx);
        let c2 = harq.combine_transmission(1, &rx);
        for (a, b) in c1.iter().zip(&c2) {
            assert!((b / a - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ir_fills_punctured_positions() {
        let k = 100;
        let rm = RateMatcher::new(k, 180);
        let buffer = PerfectLlrBuffer::new(rm.coded_len());
        let mut harq = HarqProcess::new(&rm, HarqCombining::IncrementalRedundancy, buffer);
        let rx = vec![1.0; 180];
        let mut nonzero_prev = 0usize;
        for attempt in 0..4 {
            let combined = harq.combine_transmission(attempt, &rx);
            let nonzero = combined.iter().filter(|&&v| v != 0.0).count();
            assert!(nonzero >= nonzero_prev, "IR must monotonically fill");
            nonzero_prev = nonzero;
        }
        assert!(nonzero_prev as f64 > 0.95 * 312.0);
    }

    #[test]
    fn start_block_clears() {
        let rm = RateMatcher::new(100, 312);
        let buffer = PerfectLlrBuffer::new(rm.coded_len());
        let mut harq = HarqProcess::new(&rm, HarqCombining::Chase, buffer);
        harq.combine_transmission(0, &vec![2.0; 312]);
        harq.start_block();
        assert!(harq.buffer().load().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn combining_improves_decoding_at_low_snr() {
        // A block too noisy for one transmission decodes after combining
        // two: the HARQ gain the paper's Fig. 2 shows.
        let k = 200;
        let code = TurboCode::new(k).unwrap();
        let rm = RateMatcher::new(k, code.coded_len());
        let buffer = PerfectLlrBuffer::new(rm.coded_len());
        let mut harq = HarqProcess::new(&rm, HarqCombining::Chase, buffer);
        let mut rng = seeded(12);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        // Weak, noisy LLRs.
        let amp = 1.1;
        let sigma = 1.3;
        let scale = 2.0 * amp / (sigma * sigma);
        let rm_for_tx = RateMatcher::new(k, code.coded_len());
        let noisy = |attempt: usize, rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            let tx = rm_for_tx.rate_match(&coded, HarqCombining::Chase.rv(attempt));
            tx.iter()
                .map(|&b| {
                    let x = if b == 0 { amp } else { -amp };
                    scale * (x + dsp::rng::standard_normal(rng) * sigma)
                })
                .collect()
        };
        let c1 = harq.combine_transmission(0, &noisy(0, &mut rng));
        let fail1 = code.decode(&c1, 8).bits != bits;
        let c2 = harq.combine_transmission(1, &noisy(1, &mut rng));
        let ok2 = code.decode(&c2, 8).bits == bits;
        // The first may or may not fail for a given seed; combined must
        // succeed, and combined LLR magnitudes must grow.
        assert!(ok2, "combined transmission should decode");
        let m1: f64 = c1.iter().map(|v| v.abs()).sum();
        let m2: f64 = c2.iter().map(|v| v.abs()).sum();
        assert!(m2 > 1.5 * m1, "combining must strengthen LLRs");
        let _ = fail1;
    }

    #[test]
    fn stats_accounting() {
        let mut st = HarqStats::new(4, 100);
        st.record(Some(1), 4); // first-try success
        st.record(Some(3), 4); // success on third
        st.record(None, 4); // failure
        assert_eq!(st.packets, 3);
        assert_eq!(st.delivered, 2);
        assert_eq!(st.transmissions, 1 + 3 + 4);
        assert!((st.normalized_throughput() - 2.0 / 8.0).abs() < 1e-12);
        assert!((st.avg_transmissions() - 8.0 / 3.0).abs() < 1e-12);
        // BLER after tx1: packets not decoded on first = 2/3.
        assert!((st.bler_after(1) - 2.0 / 3.0).abs() < 1e-12);
        // After tx2: packet 2 (decoded at 3) and packet 3 remain: 2/3.
        assert!((st.bler_after(2) - 2.0 / 3.0).abs() < 1e-12);
        // After tx3: only the failure remains.
        assert!((st.bler_after(3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((st.bler_after(4) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_merge() {
        let mut a = HarqStats::new(2, 10);
        a.record(Some(1), 2);
        let mut b = HarqStats::new(2, 10);
        b.record(None, 2);
        a.merge(&b);
        assert_eq!(a.packets, 2);
        assert_eq!(a.transmissions, 3);
    }

    #[test]
    fn bler_monotone_nonincreasing_in_tx() {
        let mut st = HarqStats::new(4, 10);
        let mut rng = seeded(9);
        for _ in 0..200 {
            let t = 1 + (rand::Rng::gen_range(&mut rng, 0..5usize)).min(4);
            if t <= 4 {
                st.record(Some(t), 4);
            } else {
                st.record(None, 4);
            }
        }
        for t in 1..4 {
            assert!(st.bler_after(t) >= st.bler_after(t + 1) - 1e-12);
        }
    }
}
