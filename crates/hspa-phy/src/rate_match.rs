//! HARQ rate matching with redundancy versions (TS 25.212 §4.2.7/§4.5.4).
//!
//! Rate matching adapts the `3K + 12`-bit turbo codeword to the number of
//! physical-channel bits of one transmission, by puncturing (too few
//! channel bits) or repetition (too many). HSDPA's incremental-redundancy
//! HARQ varies the puncturing pattern across retransmissions through the
//! redundancy version (RV), so combined retransmissions fill in bits
//! punctured earlier.
//!
//! The implementation uses the 3GPP `e`-algorithm (`e_ini`/`e_plus`/
//! `e_minus` error accumulation) per stream. Systematic bits are
//! transmitted in full for self-decodable RVs (`s = 1`) and punctured
//! first for non-self-decodable ones (`s = 0`); parity streams share the
//! remaining budget evenly. The whole mapping is exposed as an index map,
//! which makes the receiver's LLR de-rate-matching (accumulation) exact.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A redundancy version: `s` selects systematic priority, `r` rotates the
/// puncturing phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RedundancyVersion {
    /// `true` → self-decodable (systematic bits prioritized).
    pub s: bool,
    /// Puncturing-phase index `0..r_max`.
    pub r: u8,
}

impl RedundancyVersion {
    /// Number of distinct puncturing phases used by the default cycle.
    pub const R_MAX: u8 = 4;

    /// The default HSDPA RV cycle for incremental redundancy:
    /// first transmission self-decodable, later ones rotating phases.
    pub fn ir_cycle(attempt: usize) -> Self {
        let table = [
            RedundancyVersion { s: true, r: 0 },
            RedundancyVersion { s: false, r: 1 },
            RedundancyVersion { s: true, r: 2 },
            RedundancyVersion { s: false, r: 3 },
        ];
        table[attempt % table.len()]
    }

    /// Chase combining: every transmission uses the identical RV.
    pub fn chase() -> Self {
        RedundancyVersion { s: true, r: 0 }
    }
}

impl Default for RedundancyVersion {
    fn default() -> Self {
        Self::chase()
    }
}

/// Rate matcher for one codeword length / channel-bit budget.
///
/// # Example
///
/// ```
/// use hspa_phy::rate_match::{RateMatcher, RedundancyVersion};
///
/// // K = 100: codeword 312 bits, channel budget 240 → puncturing.
/// let rm = RateMatcher::new(100, 240);
/// let map = rm.index_map(RedundancyVersion::chase());
/// assert_eq!(map.len(), 240);
/// assert!(map.iter().all(|&i| i < 312));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMatcher {
    k: usize,
    coded_len: usize,
    target_len: usize,
    /// Lazily-built index maps, one slot per `(r, s)` redundancy version.
    /// Rate matching and LLR accumulation run once per transmission of
    /// every simulated packet, so rebuilding the map each call dominated
    /// the hot path; the cache makes those calls allocation-free.
    cache: [OnceLock<Vec<usize>>; RateMatcher::CACHE_SLOTS],
}

impl PartialEq for RateMatcher {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state; identity is the configuration.
        self.k == other.k
            && self.coded_len == other.coded_len
            && self.target_len == other.target_len
    }
}

impl Eq for RateMatcher {}

impl RateMatcher {
    /// Creates a rate matcher for information length `k` (codeword
    /// `3k + 12`) and `target_len` physical-channel bits.
    ///
    /// # Panics
    ///
    /// Panics if `target_len` is smaller than the systematic stream
    /// (`k + 6` bits — the code would no longer be self-decodable even in
    /// principle) or zero.
    pub fn new(k: usize, target_len: usize) -> Self {
        let coded_len = 3 * k + 12;
        assert!(
            target_len >= k + 6,
            "target {target_len} below systematic stream length {}",
            k + 6
        );
        Self {
            k,
            coded_len,
            target_len,
            cache: Default::default(),
        }
    }

    const CACHE_SLOTS: usize = 2 * RedundancyVersion::R_MAX as usize;

    /// The cached index map for `rv`, built on first use.
    fn cached_map(&self, rv: RedundancyVersion) -> &[usize] {
        let slot = (rv.r as usize % RedundancyVersion::R_MAX as usize) * 2 + rv.s as usize;
        self.cache[slot].get_or_init(|| self.index_map(rv))
    }

    /// Information block length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Mother codeword length `3k + 12`.
    pub fn coded_len(&self) -> usize {
        self.coded_len
    }

    /// Channel bits per transmission.
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// Effective code rate of one transmission.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.target_len as f64
    }

    /// The transmission index map for redundancy version `rv`:
    /// `output[j] = codeword[map[j]]`. Repetition repeats indices;
    /// puncturing omits them.
    // alloc: cold(cache fill behind OnceLock; runs once per redundancy version, then reused)
    pub fn index_map(&self, rv: RedundancyVersion) -> Vec<usize> {
        // Stream boundaries in the TurboCode::encode layout:
        // sys = [0, k) ∪ tail1 systematic positions, but tails are stored
        // at the end; treat streams as index lists.
        let k = self.k;
        let sys: Vec<usize> = (0..k)
            .chain([3 * k, 3 * k + 2, 3 * k + 4]) // tail1 x bits
            .chain([3 * k + 6, 3 * k + 8, 3 * k + 10]) // tail2 x' bits
            .collect();
        let p1: Vec<usize> = (k..2 * k)
            .chain([3 * k + 1, 3 * k + 3, 3 * k + 5]) // tail1 z bits
            .collect();
        let p2: Vec<usize> = (2 * k..3 * k)
            .chain([3 * k + 7, 3 * k + 9, 3 * k + 11]) // tail2 z' bits
            .collect();

        let n_sys = sys.len();
        let n_p = p1.len() + p2.len();
        let target = self.target_len;

        if target >= self.coded_len {
            // Repetition: send everything once, then repeat cyclically
            // starting at an RV-dependent offset.
            let mut out: Vec<usize> = sys.iter().chain(&p1).chain(&p2).copied().collect();
            let extra = target - self.coded_len;
            let offset = (rv.r as usize * self.coded_len) / RedundancyVersion::R_MAX as usize;
            for j in 0..extra {
                out.push((offset + j) % self.coded_len);
            }
            return out;
        }

        // Puncturing.
        let (keep_sys, keep_par) = if rv.s {
            // Self-decodable: keep all systematic bits.
            let keep_par = target - n_sys;
            (n_sys, keep_par)
        } else {
            // Non-self-decodable: favour parity; puncture systematic down
            // to make room, but never below half (keeps iterative decoding
            // alive when combined with an s=1 transmission).
            let want_par = n_p.min(target);
            let keep_sys = target
                .saturating_sub(want_par)
                .max(target.saturating_sub(n_p).max(n_sys / 2.min(n_sys)));
            (keep_sys.min(n_sys), target - keep_sys.min(n_sys))
        };

        let keep_p1 = keep_par / 2 + keep_par % 2;
        let keep_p2 = keep_par / 2;

        let mut out = Vec::with_capacity(target);
        out.extend(select_kept(&sys, keep_sys, rv.r, 0));
        out.extend(select_kept(&p1, keep_p1.min(p1.len()), rv.r, 1));
        out.extend(select_kept(&p2, keep_p2.min(p2.len()), rv.r, 2));
        // Rounding interplay can leave a tiny shortfall; pad from parity.
        let mut wrap = 0usize;
        while out.len() < target {
            out.push(p1[wrap % p1.len()]);
            wrap += 1;
        }
        out.truncate(target);
        out
    }

    /// Applies rate matching to encoder output bits.
    ///
    /// # Panics
    ///
    /// Panics if `coded.len() != coded_len()`.
    pub fn rate_match(&self, coded: &[u8], rv: RedundancyVersion) -> Vec<u8> {
        let mut out = Vec::new();
        self.rate_match_into(coded, rv, &mut out);
        out
    }

    /// Allocation-free variant of [`RateMatcher::rate_match`]: clears
    /// `out` and fills it with the transmission bits, reusing its
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `coded.len() != coded_len()`.
    pub fn rate_match_into(&self, coded: &[u8], rv: RedundancyVersion, out: &mut Vec<u8>) {
        assert_eq!(coded.len(), self.coded_len, "codeword length mismatch");
        out.clear();
        out.extend(self.cached_map(rv).iter().map(|&i| coded[i]));
    }

    /// De-rate-matching: accumulates received LLRs into a codeword-sized
    /// buffer (punctured positions stay at their prior value; repeated
    /// positions accumulate).
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != target_len()` or
    /// `buffer.len() != coded_len()`.
    pub fn accumulate(&self, llrs: &[f64], rv: RedundancyVersion, buffer: &mut [f64]) {
        assert_eq!(llrs.len(), self.target_len, "received length mismatch");
        assert_eq!(buffer.len(), self.coded_len, "buffer length mismatch");
        for (j, &idx) in self.cached_map(rv).iter().enumerate() {
            buffer[idx] += llrs[j];
        }
    }
}

/// Keeps `keep` of the `stream` positions using the 3GPP `e`-algorithm:
/// puncture `X - keep` bits with error accumulation, with the initial
/// error offset rotated by the RV phase `r` so different RVs puncture
/// different positions.
fn select_kept(stream: &[usize], keep: usize, r: u8, salt: u64) -> Vec<usize> {
    let x = stream.len();
    if keep >= x {
        return stream.to_vec();
    }
    let to_remove = x - keep;
    let e_plus = x as i64;
    let e_minus = to_remove as i64;
    // RV-dependent initial error per 25.212 §4.5.4.3 flavour:
    // e_ini = ((X - (r·e_plus)/r_max) - 1) mod e_plus + 1, salted per
    // stream so the three streams do not puncture in lockstep.
    let rmax = RedundancyVersion::R_MAX as i64;
    let phase = (r as i64 + salt as i64) % rmax;
    let e_ini = ((x as i64 - (phase * e_plus) / rmax - 1).rem_euclid(e_plus)) + 1;
    let mut e = e_ini;
    let mut out = Vec::with_capacity(keep);
    for &pos in stream {
        e -= e_minus;
        if e <= 0 {
            e += e_plus; // puncture this bit
        } else {
            out.push(pos);
        }
    }
    // The e-algorithm removes exactly `to_remove` bits when
    // e_minus·X ≡ 0 handling is exact; guard against off-by-one drift.
    debug_assert!(out.len() == keep || out.len() == keep + 1 || out.len() + 1 == keep);
    out.truncate(keep);
    while out.len() < keep {
        out.push(*stream.last().expect("non-empty stream"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turbo::TurboCode;
    use dsp::rng::{random_bits, seeded};
    use proptest::prelude::*;

    #[test]
    fn identity_when_target_equals_codeword() {
        let rm = RateMatcher::new(100, 312);
        let map = rm.index_map(RedundancyVersion::chase());
        let mut sorted = map.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..312).collect::<Vec<_>>());
    }

    #[test]
    fn puncturing_map_is_distinct_and_in_range() {
        let rm = RateMatcher::new(100, 200);
        for r in 0..4u8 {
            for s in [true, false] {
                let map = rm.index_map(RedundancyVersion { s, r });
                assert_eq!(map.len(), 200, "s={s} r={r}");
                assert!(map.iter().all(|&i| i < 312));
                let mut sorted = map.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 200, "punctured map must not repeat bits");
            }
        }
    }

    #[test]
    fn self_decodable_keeps_all_systematic() {
        let k = 100;
        let rm = RateMatcher::new(k, 160);
        let map = rm.index_map(RedundancyVersion { s: true, r: 0 });
        for i in 0..k {
            assert!(map.contains(&i), "systematic bit {i} punctured");
        }
    }

    #[test]
    fn rv_phases_differ() {
        let rm = RateMatcher::new(100, 200);
        let m0 = rm.index_map(RedundancyVersion { s: true, r: 0 });
        let m2 = rm.index_map(RedundancyVersion { s: true, r: 2 });
        assert_ne!(m0, m2, "different RVs must puncture differently");
    }

    #[test]
    fn repetition_covers_everything() {
        let rm = RateMatcher::new(100, 400);
        let map = rm.index_map(RedundancyVersion::chase());
        assert_eq!(map.len(), 400);
        let mut seen = vec![false; 312];
        for &i in &map {
            seen[i] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "repetition must cover the codeword"
        );
    }

    #[test]
    fn accumulate_inverts_rate_match_noiseless() {
        let k = 100;
        let code = TurboCode::new(k).unwrap();
        let rm = RateMatcher::new(k, 220);
        let mut rng = seeded(3);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let rv = RedundancyVersion::chase();
        let tx = rm.rate_match(&coded, rv);
        let llrs: Vec<f64> = tx
            .iter()
            .map(|&b| if b == 0 { 4.0 } else { -4.0 })
            .collect();
        let mut buf = vec![0.0; rm.coded_len()];
        rm.accumulate(&llrs, rv, &mut buf);
        // Every transmitted position carries the right sign; punctured are 0.
        for (i, &v) in buf.iter().enumerate() {
            if v != 0.0 {
                let expect = if coded[i] == 0 { 4.0 } else { -4.0 };
                assert_eq!(v, expect, "position {i}");
            }
        }
        let out = code.decode(&buf, 6);
        assert_eq!(out.bits, bits, "punctured codeword must still decode");
    }

    #[test]
    fn ir_combining_fills_punctures() {
        let k = 100;
        let rm = RateMatcher::new(k, 180);
        let mut covered = vec![false; rm.coded_len()];
        for attempt in 0..4 {
            let rv = RedundancyVersion::ir_cycle(attempt);
            for idx in rm.index_map(rv) {
                covered[idx] = true;
            }
        }
        let cov = covered.iter().filter(|&&c| c).count();
        assert!(
            cov as f64 > 0.95 * rm.coded_len() as f64,
            "4 IR transmissions cover only {cov}/{}",
            rm.coded_len()
        );
    }

    #[test]
    fn ir_cycle_alternates_s() {
        assert!(RedundancyVersion::ir_cycle(0).s);
        assert!(!RedundancyVersion::ir_cycle(1).s);
        assert_eq!(
            RedundancyVersion::ir_cycle(4),
            RedundancyVersion::ir_cycle(0)
        );
    }

    #[test]
    #[should_panic(expected = "below systematic")]
    fn overly_aggressive_target_rejected() {
        let _ = RateMatcher::new(100, 90);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(30))]
        #[test]
        fn map_length_always_exact(k in 40usize..400, frac in 0.55f64..2.0,
                                   r in 0u8..4, s in proptest::bool::ANY) {
            let coded = 3 * k + 12;
            let target = ((coded as f64 * frac) as usize).max(k + 6);
            let rm = RateMatcher::new(k, target);
            let map = rm.index_map(RedundancyVersion { s, r });
            prop_assert_eq!(map.len(), target);
            prop_assert!(map.iter().all(|&i| i < coded));
        }
    }
}
