//! Waveform-level HS-PDSCH front-end: multicode spreading + RRC shaping.
//!
//! The throughput experiments run at symbol level (the standard
//! simulation shortcut), but the full transmit waveform path of the
//! paper's Fig. 1(a) is implemented here: symbol streams are spread over
//! SF16 OVSF codes, scrambled, and shaped with the 3GPP root-raised-
//! cosine pulse (roll-off 0.22). The receiver front-end applies the
//! matched filter, samples at chip rate, descrambles and despreads. Used
//! by the `chip_level` example and the waveform integration tests.

use dsp::filter::{downsample, rrc_taps, upsample, FirFilter};
use dsp::Complex64;

use crate::spreading::{despread_multicode, scrambling_sequence, spread_multicode, HS_PDSCH_SF};

/// 3GPP chip-pulse roll-off.
pub const RRC_ROLLOFF: f64 = 0.22;

/// Waveform-level transmitter front-end.
///
/// # Example
///
/// ```
/// use hspa_phy::hsdpa::HsdpaFrontend;
/// use dsp::Complex64;
///
/// let fe = HsdpaFrontend::new(2, 0, 4);
/// let streams = vec![vec![Complex64::ONE; 8]; 2];
/// let wave = fe.transmit(&streams);
/// let back = fe.receive(&wave, 8);
/// assert!((back[0][0] - Complex64::ONE).norm() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct HsdpaFrontend {
    n_codes: usize,
    scrambling_code: u32,
    sps: usize,
    rrc: Vec<f64>,
}

impl HsdpaFrontend {
    /// Creates a front-end with `n_codes` parallel HS-PDSCH codes, a cell
    /// scrambling-code number and `sps` samples per chip.
    ///
    /// # Panics
    ///
    /// Panics if `n_codes` is 0 or exceeds 15 (HS-PDSCH limit), or `sps`
    /// is 0.
    pub fn new(n_codes: usize, scrambling_code: u32, sps: usize) -> Self {
        assert!((1..=15).contains(&n_codes), "HS-PDSCH uses 1..=15 codes");
        assert!(sps >= 1, "need at least one sample per chip");
        Self {
            n_codes,
            scrambling_code,
            sps,
            rrc: rrc_taps(RRC_ROLLOFF, 8, sps),
        }
    }

    /// Number of parallel channelization codes.
    pub fn n_codes(&self) -> usize {
        self.n_codes
    }

    /// Samples per chip of the shaped waveform.
    pub fn sps(&self) -> usize {
        self.sps
    }

    /// Group delay of one RRC filter in waveform samples.
    pub fn filter_delay(&self) -> usize {
        (self.rrc.len() - 1) / 2
    }

    /// Spreads, scrambles and pulse-shapes symbol streams into a waveform.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != n_codes` or stream lengths differ.
    pub fn transmit(&self, streams: &[Vec<Complex64>]) -> Vec<Complex64> {
        assert_eq!(streams.len(), self.n_codes, "stream count mismatch");
        let n_sym = streams[0].len();
        let scr = scrambling_sequence(self.scrambling_code, n_sym * HS_PDSCH_SF);
        let chips = spread_multicode(streams, HS_PDSCH_SF, &scr);
        let up = upsample(&chips, self.sps);
        let mut shaper = FirFilter::new(self.rrc.clone());
        // Feed zeros afterwards to flush the filter tail.
        // The RRC taps have unit energy, so each zero-stuffed chip
        // contributes a pulse of exactly its own energy — no rescaling.
        let mut wave = shaper.process(&up);
        let tail = vec![Complex64::ZERO; self.filter_delay()];
        wave.extend(shaper.process(&tail));
        wave
    }

    /// Matched-filters, chip-samples, descrambles and despreads a
    /// received waveform back into `n_sym` symbols per code.
    pub fn receive(&self, waveform: &[Complex64], n_sym: usize) -> Vec<Vec<Complex64>> {
        let mut matched = FirFilter::new(self.rrc.clone());
        let mut filtered = matched.process(waveform);
        let tail = vec![Complex64::ZERO; self.filter_delay()];
        filtered.extend(matched.process(&tail));
        // Total delay: two cascaded RRC filters. The raised-cosine
        // autocorrelation peak of the unit-energy pair is exactly 1, so
        // chip-rate samples at the peak need no gain correction.
        let delay = 2 * self.filter_delay();
        let chips: Vec<Complex64> = downsample(&filtered[delay..], self.sps, 0)
            .into_iter()
            .take(n_sym * HS_PDSCH_SF)
            .collect();
        assert!(
            chips.len() == n_sym * HS_PDSCH_SF,
            "waveform too short for {n_sym} symbols"
        );
        let scr = scrambling_sequence(self.scrambling_code, n_sym * HS_PDSCH_SF);
        (0..self.n_codes)
            .map(|k| despread_multicode(&chips, HS_PDSCH_SF, k, self.n_codes, &scr))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::rng::{complex_gaussian, complex_gaussian_vec, seeded};

    #[test]
    fn waveform_roundtrip_recovers_symbols() {
        let fe = HsdpaFrontend::new(4, 3, 4);
        let mut rng = seeded(1);
        let streams: Vec<Vec<Complex64>> = (0..4)
            .map(|_| complex_gaussian_vec(&mut rng, 16, 1.0))
            .collect();
        let wave = fe.transmit(&streams);
        let back = fe.receive(&wave, 16);
        for (k, (orig, rec)) in streams.iter().zip(&back).enumerate() {
            for (i, (a, b)) in orig.iter().zip(rec).enumerate() {
                assert!((*a - *b).norm() < 0.08, "code {k} symbol {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn waveform_energy_is_bounded() {
        let fe = HsdpaFrontend::new(1, 0, 4);
        let streams = vec![vec![Complex64::ONE; 32]];
        let wave = fe.transmit(&streams);
        let e: f64 = wave.iter().map(|w| w.norm_sqr()).sum();
        // Spreading and RRC shaping both conserve energy: 32 unit-energy
        // symbols → total waveform energy ≈ 32 (± filter edges).
        assert!((e - 32.0).abs() / 32.0 < 0.1, "waveform energy {e}");
    }

    #[test]
    fn noise_degrades_gracefully() {
        let fe = HsdpaFrontend::new(2, 1, 4);
        let mut rng = seeded(2);
        let streams: Vec<Vec<Complex64>> = (0..2)
            .map(|_| complex_gaussian_vec(&mut rng, 12, 1.0))
            .collect();
        let mut wave = fe.transmit(&streams);
        for w in wave.iter_mut() {
            *w += complex_gaussian(&mut rng, 0.01);
        }
        let back = fe.receive(&wave, 12);
        // Despreading gain (SF16) suppresses the per-chip noise.
        let err: f64 = streams[0]
            .iter()
            .zip(&back[0])
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / 12.0;
        assert!(err < 0.05, "post-despreading error {err}");
    }

    #[test]
    #[should_panic(expected = "1..=15")]
    fn too_many_codes_rejected() {
        let _ = HsdpaFrontend::new(16, 0, 4);
    }
}
