//! HSPA+ (3GPP HSDPA) baseband physical layer.
//!
//! A from-scratch implementation of every PHY component the DAC'12 study
//! relies on:
//!
//! * [`crc`] — transport-block CRC attachment (3GPP gCRC24/gCRC16).
//! * [`turbo`] — the UMTS rate-1/3 PCCC turbo code: standard internal
//!   interleaver (TS 25.212 §4.2.3.2.3), RSC encoders with trellis
//!   termination, and an iterative Max-Log-MAP decoder.
//! * [`rate_match`] — HARQ rate matching with redundancy versions
//!   (puncturing/repetition via the 3GPP `e`-algorithm).
//! * [`interleave`] — the 30-column second (channel) interleaver.
//! * [`modulation`] — Gray-mapped QPSK/16QAM/64QAM with a max-log soft
//!   demapper producing LLRs.
//! * [`spreading`] — OVSF channelization codes and Gold-sequence
//!   scrambling.
//! * [`channel`] — AWGN and ITU multipath Rayleigh block-fading models.
//! * [`equalizer`] — linear MMSE FIR equalizer plus a RAKE/matched-filter
//!   baseline.
//! * [`harq`] — the hybrid-ARQ entity: LLR buffering (through a pluggable,
//!   possibly *faulty*, storage backend), Chase/IR combining and
//!   throughput accounting.
//!
//! The convention throughout: an LLR is `ln P(b=0)/P(b=1)`, so positive
//! LLRs favour bit 0, and BPSK-like mappings send bit 0 to the positive
//! constellation point.
//!
//! # Example
//!
//! ```
//! use hspa_phy::turbo::TurboCode;
//!
//! let code = TurboCode::new(40)?;
//! let bits = vec![1u8, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0,
//!                 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0,
//!                 1, 0, 1, 1, 0, 1, 0, 0];
//! let coded = code.encode(&bits);
//! assert_eq!(coded.len(), 3 * 40 + 12);
//! // Noiseless LLRs decode back to the data.
//! let llrs: Vec<f64> = coded.iter().map(|&b| if b == 0 { 8.0 } else { -8.0 }).collect();
//! let out = code.decode(&llrs, 4);
//! assert_eq!(out.bits, bits);
//! # Ok::<(), hspa_phy::turbo::TurboError>(())
//! ```

#![forbid(unsafe_code)]

pub mod bits;
pub mod channel;
pub mod crc;
pub mod equalizer;
pub mod harq;
pub mod hsdpa;
pub mod interleave;
pub mod modulation;
pub mod rate_match;
pub mod spreading;
pub mod turbo;

pub use channel::ChannelModel;
pub use harq::{HarqCombining, LlrBuffer};
pub use modulation::Modulation;
