//! CDMA spreading: OVSF channelization codes and scrambling (TS 25.213).
//!
//! HS-PDSCH uses spreading factor 16 with up to 15 parallel
//! channelization codes, all multiplied by a cell-specific complex
//! scrambling sequence derived from the downlink Gold code.

use dsp::sequences::GoldSequence;
use dsp::Complex64;

/// HS-PDSCH spreading factor.
pub const HS_PDSCH_SF: usize = 16;

/// Generates the OVSF (orthogonal variable spreading factor) code
/// `C_{sf,index}` as ±1 chips.
///
/// # Panics
///
/// Panics if `sf` is not a power of two or `index >= sf`.
///
/// # Example
///
/// ```
/// use hspa_phy::spreading::ovsf_code;
///
/// let c0 = ovsf_code(4, 0);
/// let c1 = ovsf_code(4, 1);
/// let dot: i32 = c0.iter().zip(&c1).map(|(&a, &b)| (a * b) as i32).sum();
/// assert_eq!(dot, 0); // orthogonal
/// ```
pub fn ovsf_code(sf: usize, index: usize) -> Vec<i8> {
    assert!(sf.is_power_of_two() && sf >= 1, "SF must be a power of two");
    assert!(index < sf, "code index out of range");
    let mut code = vec![1i8];
    let mut len = 1usize;
    // Walk down the OVSF tree: each level doubles; bit of `index` picks
    // the child (0 → [c, c], 1 → [c, -c]).
    while len < sf {
        let bit = (index >> (sf.trailing_zeros() as usize - 1 - len.trailing_zeros() as usize)) & 1;
        let mut nxt = Vec::with_capacity(len * 2);
        nxt.extend_from_slice(&code);
        if bit == 0 {
            nxt.extend_from_slice(&code);
        } else {
            nxt.extend(code.iter().map(|&c| -c));
        }
        code = nxt;
        len *= 2;
    }
    code
}

/// The complex downlink scrambling sequence for `code_number`, `n` chips.
///
/// Chips are unit-magnitude: `(±1 ± j)/√2` built from two Gold-sequence
/// phases as in TS 25.213 §5.2.2.
pub fn scrambling_sequence(code_number: u32, n: usize) -> Vec<Complex64> {
    let mut gold_i = GoldSequence::new(code_number);
    // The Q branch is the same Gold sequence delayed by 2^17 chips
    // (TS 25.213 §5.2.2); advance a second generator by that offset.
    let mut gold_q = GoldSequence::new(code_number);
    for _ in 0..131_072 {
        gold_q.next_chip();
    }
    let s = std::f64::consts::FRAC_1_SQRT_2;
    (0..n)
        .map(|_| {
            let i = 1.0 - 2.0 * gold_i.next_chip() as f64;
            let q = 1.0 - 2.0 * gold_q.next_chip() as f64;
            Complex64::new(i * s, q * s)
        })
        .collect()
}

/// Spreads symbols with an OVSF code and applies scrambling.
///
/// Output is `symbols.len() × sf` chips with unit average energy.
///
/// # Panics
///
/// Panics if `scrambling.len() < symbols.len() * code.len()`.
pub fn spread(symbols: &[Complex64], code: &[i8], scrambling: &[Complex64]) -> Vec<Complex64> {
    let sf = code.len();
    assert!(
        scrambling.len() >= symbols.len() * sf,
        "scrambling sequence too short"
    );
    let norm = 1.0 / (sf as f64).sqrt();
    let mut chips = Vec::with_capacity(symbols.len() * sf);
    for (si, &s) in symbols.iter().enumerate() {
        for (ci, &c) in code.iter().enumerate() {
            let scr = scrambling[si * sf + ci];
            chips.push(s.scale(c as f64 * norm) * scr);
        }
    }
    chips
}

/// Despreads chips back to symbols (descramble, correlate with the code).
///
/// # Panics
///
/// Panics if `chips.len()` is not a multiple of the code length or the
/// scrambling sequence is too short.
pub fn despread(chips: &[Complex64], code: &[i8], scrambling: &[Complex64]) -> Vec<Complex64> {
    let sf = code.len();
    assert_eq!(chips.len() % sf, 0, "chip count must be a symbol multiple");
    assert!(
        scrambling.len() >= chips.len(),
        "scrambling sequence too short"
    );
    let norm = 1.0 / (sf as f64).sqrt();
    chips
        .chunks(sf)
        .enumerate()
        .map(|(si, chunk)| {
            let mut acc = Complex64::ZERO;
            for (ci, &y) in chunk.iter().enumerate() {
                let scr = scrambling[si * sf + ci];
                acc += y * scr.conj() * Complex64::from_re(code[ci] as f64);
            }
            acc.scale(norm)
        })
        .collect()
}

/// Multi-code transmission: spreads each stream with its own OVSF code
/// and sums the chips (HS-PDSCH uses up to 15 codes at SF16).
///
/// # Panics
///
/// Panics if streams have unequal lengths or there are more streams than
/// codes at the spreading factor.
pub fn spread_multicode(
    streams: &[Vec<Complex64>],
    sf: usize,
    scrambling: &[Complex64],
) -> Vec<Complex64> {
    assert!(!streams.is_empty(), "need at least one stream");
    assert!(streams.len() <= sf, "more streams than orthogonal codes");
    let n = streams[0].len();
    assert!(
        streams.iter().all(|s| s.len() == n),
        "streams must have equal lengths"
    );
    let mut sum = vec![Complex64::ZERO; n * sf];
    // HS-PDSCH codes start at index 1 (index 0 is reserved for control).
    let scale = 1.0 / (streams.len() as f64).sqrt();
    for (k, stream) in streams.iter().enumerate() {
        let code = ovsf_code(sf, (k + 1) % sf);
        let chips = spread(stream, &code, scrambling);
        for (acc, c) in sum.iter_mut().zip(chips) {
            *acc += c.scale(scale);
        }
    }
    sum
}

/// Despreads one code of a multi-code transmission.
pub fn despread_multicode(
    chips: &[Complex64],
    sf: usize,
    stream_index: usize,
    n_streams: usize,
    scrambling: &[Complex64],
) -> Vec<Complex64> {
    let code = ovsf_code(sf, (stream_index + 1) % sf);
    let scale = (n_streams as f64).sqrt();
    despread(chips, &code, scrambling)
        .into_iter()
        .map(|s| s.scale(scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::rng::{complex_gaussian_vec, seeded};
    use proptest::prelude::*;

    #[test]
    fn ovsf_codes_are_orthogonal() {
        for sf in [2usize, 4, 8, 16] {
            for a in 0..sf {
                for b in 0..sf {
                    let ca = ovsf_code(sf, a);
                    let cb = ovsf_code(sf, b);
                    let dot: i32 = ca.iter().zip(&cb).map(|(&x, &y)| (x * y) as i32).sum();
                    if a == b {
                        assert_eq!(dot, sf as i32);
                    } else {
                        assert_eq!(dot, 0, "SF{sf} codes {a},{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn ovsf_code_zero_is_all_ones() {
        assert!(ovsf_code(16, 0).iter().all(|&c| c == 1));
    }

    #[test]
    fn spread_despread_roundtrip() {
        let mut rng = seeded(1);
        let symbols = complex_gaussian_vec(&mut rng, 32, 1.0);
        let scr = scrambling_sequence(0, 32 * 16);
        let code = ovsf_code(16, 5);
        let chips = spread(&symbols, &code, &scr);
        assert_eq!(chips.len(), 32 * 16);
        let back = despread(&chips, &code, &scr);
        for (a, b) in back.iter().zip(&symbols) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn spreading_preserves_energy() {
        let mut rng = seeded(2);
        let symbols = complex_gaussian_vec(&mut rng, 64, 1.0);
        let scr = scrambling_sequence(3, 64 * 16);
        let chips = spread(&symbols, &ovsf_code(16, 2), &scr);
        let es: f64 = symbols.iter().map(|s| s.norm_sqr()).sum();
        let ec: f64 = chips.iter().map(|c| c.norm_sqr()).sum();
        assert!((es - ec).abs() / es < 1e-9);
    }

    #[test]
    fn multicode_streams_separate() {
        let mut rng = seeded(3);
        let n_streams = 4;
        let streams: Vec<Vec<Complex64>> = (0..n_streams)
            .map(|_| complex_gaussian_vec(&mut rng, 16, 1.0))
            .collect();
        let scr = scrambling_sequence(7, 16 * 16);
        let chips = spread_multicode(&streams, 16, &scr);
        for (k, stream) in streams.iter().enumerate() {
            let back = despread_multicode(&chips, 16, k, n_streams, &scr);
            for (a, b) in back.iter().zip(stream) {
                assert!((*a - *b).norm() < 1e-9, "stream {k}");
            }
        }
    }

    #[test]
    fn different_scrambling_codes_decorrelate() {
        let mut rng = seeded(4);
        let symbols = complex_gaussian_vec(&mut rng, 64, 1.0);
        let scr_a = scrambling_sequence(0, 64 * 16);
        let scr_b = scrambling_sequence(9, 64 * 16);
        let code = ovsf_code(16, 1);
        let chips = spread(&symbols, &code, &scr_a);
        let wrong = despread(&chips, &code, &scr_b);
        let energy_right: f64 = symbols.iter().map(|s| s.norm_sqr()).sum();
        let energy_wrong: f64 = wrong.iter().map(|s| s.norm_sqr()).sum();
        assert!(
            energy_wrong < 0.3 * energy_right,
            "wrong descrambling should collapse energy: {energy_wrong} vs {energy_right}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sf_rejected() {
        let _ = ovsf_code(12, 0);
    }

    proptest! {
        #[test]
        fn roundtrip_any_code(sf_exp in 1u32..5, idx in 0usize..16, seed in 0u64..50) {
            let sf = 1usize << sf_exp;
            let idx = idx % sf;
            let mut rng = seeded(seed);
            let symbols = complex_gaussian_vec(&mut rng, 8, 1.0);
            let scr = scrambling_sequence(seed as u32 % 64, 8 * sf);
            let chips = spread(&symbols, &ovsf_code(sf, idx), &scr);
            let back = despread(&chips, &ovsf_code(sf, idx), &scr);
            for (a, b) in back.iter().zip(&symbols) {
                prop_assert!((*a - *b).norm() < 1e-9);
            }
        }
    }
}
