//! Gray-mapped QAM modulation and max-log soft demapping.
//!
//! HSDPA uses QPSK and 16QAM, with 64QAM added by HSPA+ — the paper's
//! worst-case study mode. All constellations are square QAM with
//! independent Gray-coded PAM on the I and Q axes and unit average energy,
//! so per-bit LLRs decompose per axis and the max-log demapper runs in
//! `O(√M)` per symbol.
//!
//! Bit order per symbol: the first half of the bits select the I level
//! (MSB first), the second half the Q level.

use dsp::Complex64;
use serde::{Deserialize, Serialize};

/// Modulation alphabets of the HSPA+ downlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Modulation {
    /// 4-point QAM, 2 bits per symbol.
    Qpsk,
    /// 16-point QAM, 4 bits per symbol.
    Qam16,
    /// 64-point QAM, 6 bits per symbol (the paper's evaluation mode).
    #[default]
    Qam64,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Bits per axis (I or Q).
    pub fn bits_per_axis(self) -> usize {
        self.bits_per_symbol() / 2
    }

    /// Number of PAM levels per axis.
    pub fn levels_per_axis(self) -> usize {
        1 << self.bits_per_axis()
    }

    /// Normalization factor so the constellation has unit average energy
    /// (`√2` for QPSK, `√10` for 16QAM, `√42` for 64QAM).
    pub fn norm(self) -> f64 {
        // Mean energy of PAM levels ±1, ±3, … ±(L-1) is (L²-1)/3 per axis.
        let l = self.levels_per_axis() as f64;
        (2.0 * (l * l - 1.0) / 3.0).sqrt()
    }

    /// Maps a bit stream to symbols.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of
    /// [`Modulation::bits_per_symbol`] or contains non-binary values.
    pub fn modulate(self, bits: &[u8]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.modulate_into(bits, &mut out);
        out
    }

    /// Allocation-free [`Modulation::modulate`]: clears `out` and fills
    /// it, reusing capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of
    /// [`Modulation::bits_per_symbol`] or contains non-binary values.
    pub fn modulate_into(self, bits: &[u8], out: &mut Vec<Complex64>) {
        let bps = self.bits_per_symbol();
        assert_eq!(bits.len() % bps, 0, "bit count must be a symbol multiple");
        crate::bits::assert_binary(bits);
        let half = self.bits_per_axis();
        let norm = self.norm();
        out.clear();
        out.extend(bits.chunks(bps).map(|chunk| {
            let i = pam_level(&chunk[..half]) / norm;
            let q = pam_level(&chunk[half..]) / norm;
            Complex64::new(i, q)
        }));
    }

    /// Max-log soft demapping: produces one LLR per bit
    /// (`ln P(0)/P(1)`, positive favours 0) given the complex noise
    /// variance `noise_var` per symbol.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var` is not positive.
    pub fn demodulate_soft(self, symbols: &[Complex64], noise_var: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(symbols.len() * self.bits_per_symbol());
        self.demodulate_soft_into(symbols, noise_var, &mut out);
        out
    }

    /// Allocation-free [`Modulation::demodulate_soft`]: clears `out` and
    /// fills it with one LLR per bit, reusing capacity.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var` is not positive.
    pub fn demodulate_soft_into(self, symbols: &[Complex64], noise_var: f64, out: &mut Vec<f64>) {
        assert!(noise_var > 0.0, "noise variance must be positive");
        let norm = self.norm();
        // Hoisted once per call (the values are identical for every
        // symbol): the un-normalized complex noise variance and the
        // per-axis LLR denominator it implies.
        let nv = noise_var * norm * norm;
        let denom = 2.0 * (nv / 2.0);
        out.clear();
        out.reserve(symbols.len() * self.bits_per_symbol());
        // Per-constellation unrolled axis demappers: the Gray code of a
        // fixed 2/4/8-level PAM axis is compile-time constant, so the
        // min-distance search over each bit's 0-set and 1-set becomes a
        // branchless `min` tree over fixed subsets — the same minima
        // (and therefore bit-identical LLRs) as the generic level loop
        // in `axis_llrs`, at a fraction of its branchy cost.
        match self {
            Modulation::Qpsk => {
                for &s in symbols {
                    axis_llrs_2pam(s.re * norm, denom, out);
                    axis_llrs_2pam(s.im * norm, denom, out);
                }
            }
            Modulation::Qam16 => {
                for &s in symbols {
                    axis_llrs_4pam(s.re * norm, denom, out);
                    axis_llrs_4pam(s.im * norm, denom, out);
                }
            }
            Modulation::Qam64 => {
                for &s in symbols {
                    axis_llrs_8pam(s.re * norm, denom, out);
                    axis_llrs_8pam(s.im * norm, denom, out);
                }
            }
        }
    }

    /// Hard-decision demapping (minimum distance).
    pub fn demodulate_hard(self, symbols: &[Complex64]) -> Vec<u8> {
        self.demodulate_soft(symbols, 1.0)
            .iter()
            .map(|&l| crate::bits::hard_decision(l))
            .collect()
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16QAM",
            Modulation::Qam64 => "64QAM",
        };
        f.write_str(s)
    }
}

/// Gray-coded PAM level for `bits` (MSB first), un-normalized
/// (±1, ±3, …).
///
/// Convention: all-zero bits map to the most positive level, consistent
/// with "bit 0 → +1" BPSK.
fn pam_level(bits: &[u8]) -> f64 {
    // Gray decode MSB-first into an index 0..L.
    let mut idx = 0usize;
    let mut acc = 0u8;
    for &b in bits {
        acc ^= b;
        idx = (idx << 1) | acc as usize;
    }
    let l = 1usize << bits.len();
    // Index 0 → +(L-1), index L-1 → -(L-1): descending by 2.
    (l as f64 - 1.0) - 2.0 * idx as f64
}

/// 2-PAM (QPSK axis): Gray map `[+1, -1]`, one bit whose 0-set is the
/// positive level.
#[inline]
fn axis_llrs_2pam(y: f64, denom: f64, out: &mut Vec<f64>) {
    let d0 = y - 1.0;
    let d1 = y - -1.0;
    out.push((d1 * d1 - d0 * d0) / denom);
}

/// 4-PAM (16QAM axis): levels `[+3, +1, -1, -3]` carry Gray patterns
/// `[00, 01, 11, 10]` (MSB first).
#[inline]
fn axis_llrs_4pam(y: f64, denom: f64, out: &mut Vec<f64>) {
    let d0 = y - 3.0;
    let d1 = y - 1.0;
    let d2 = y - -1.0;
    let d3 = y - -3.0;
    let (q0, q1, q2, q3) = (d0 * d0, d1 * d1, d2 * d2, d3 * d3);
    // MSB: 0-set {+3, +1}, 1-set {-1, -3}.
    out.push((q2.min(q3) - q0.min(q1)) / denom);
    // LSB: 0-set {+3, -3}, 1-set {+1, -1}.
    out.push((q1.min(q2) - q0.min(q3)) / denom);
}

/// 8-PAM (64QAM axis): levels `[+7, +5, +3, +1, -1, -3, -5, -7]` carry
/// Gray patterns `[000, 001, 011, 010, 110, 111, 101, 100]` (MSB
/// first).
#[inline]
fn axis_llrs_8pam(y: f64, denom: f64, out: &mut Vec<f64>) {
    let d0 = y - 7.0;
    let d1 = y - 5.0;
    let d2 = y - 3.0;
    let d3 = y - 1.0;
    let d4 = y - -1.0;
    let d5 = y - -3.0;
    let d6 = y - -5.0;
    let d7 = y - -7.0;
    let (q0, q1, q2, q3) = (d0 * d0, d1 * d1, d2 * d2, d3 * d3);
    let (q4, q5, q6, q7) = (d4 * d4, d5 * d5, d6 * d6, d7 * d7);
    // MSB: 0-set is the positive half.
    out.push((q4.min(q5).min(q6).min(q7) - q0.min(q1).min(q2).min(q3)) / denom);
    // Middle bit: 0-set {±7, ±5}, 1-set {±3, ±1}.
    out.push((q2.min(q3).min(q4).min(q5) - q0.min(q1).min(q6).min(q7)) / denom);
    // LSB: 0-set {+7, +1, -1, -7}, 1-set {+5, +3, -3, -5}.
    out.push((q1.min(q2).min(q5).min(q6) - q0.min(q3).min(q4).min(q7)) / denom);
}

/// Per-axis max-log LLRs for a received PAM value `y` on the
/// un-normalized axis; `noise_var` is the complex-symbol variance in the
/// same un-normalized units (each axis sees half of it). Kept as the
/// readable reference the unrolled per-constellation demappers are
/// checked against in tests.
#[cfg(test)]
fn axis_llrs(y: f64, bits: usize, noise_var: f64, out: &mut Vec<f64>) {
    let l = 1usize << bits;
    let axis_var = noise_var / 2.0;
    // Enumerate all levels once; for each bit take min-distance over the
    // 0-set and 1-set. L ≤ 8 so this is cheap and exact max-log.
    let mut d2 = [0.0f64; 8];
    let mut bit_patterns = [0usize; 8];
    for idx in 0..l {
        let level = (l as f64 - 1.0) - 2.0 * idx as f64;
        let d = y - level;
        d2[idx] = d * d;
        // Gray encode idx back to bits.
        bit_patterns[idx] = idx ^ (idx >> 1);
    }
    for b in 0..bits {
        let shift = bits - 1 - b; // MSB first
        let mut min0 = f64::MAX;
        let mut min1 = f64::MAX;
        for idx in 0..l {
            let bit = (bit_patterns[idx] >> shift) & 1;
            if bit == 0 {
                if d2[idx] < min0 {
                    min0 = d2[idx];
                }
            } else if d2[idx] < min1 {
                min1 = d2[idx];
            }
        }
        out.push((min1 - min0) / (2.0 * axis_var));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::rng::{complex_gaussian, random_bits, seeded};
    use proptest::prelude::*;

    #[test]
    fn constellation_sizes_and_energy() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let n_sym = 1 << m.bits_per_symbol();
            // Enumerate all symbols via all bit patterns.
            let mut bits = Vec::new();
            for v in 0..n_sym {
                for i in (0..m.bits_per_symbol()).rev() {
                    bits.push(((v >> i) & 1) as u8);
                }
            }
            let symbols = m.modulate(&bits);
            assert_eq!(symbols.len(), n_sym);
            let energy: f64 = symbols.iter().map(|s| s.norm_sqr()).sum::<f64>() / n_sym as f64;
            assert!((energy - 1.0).abs() < 1e-12, "{m}: energy {energy}");
            // All points distinct.
            for a in 0..n_sym {
                for b in a + 1..n_sym {
                    assert!(
                        (symbols[a] - symbols[b]).norm() > 1e-9,
                        "{m}: duplicate point"
                    );
                }
            }
        }
    }

    #[test]
    fn unrolled_demappers_match_generic_reference() {
        let mut rng = seeded(77);
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let half = m.bits_per_axis();
            let norm = m.norm();
            for i in 0..200 {
                let s = complex_gaussian(&mut rng, 1.0) * 3.0;
                let noise_var = 0.01 + 0.1 * i as f64;
                let mut reference = Vec::new();
                axis_llrs(s.re * norm, half, noise_var * norm * norm, &mut reference);
                axis_llrs(s.im * norm, half, noise_var * norm * norm, &mut reference);
                let fast = m.demodulate_soft(&[s], noise_var);
                assert_eq!(fast, reference, "{m} symbol {s}");
            }
        }
    }

    #[test]
    fn gray_mapping_adjacent_levels_differ_one_bit() {
        // For 8-PAM (64QAM axis): adjacent levels must differ in exactly
        // one Gray bit.
        let bits_per_axis = 3;
        let mut level_to_bits = std::collections::BTreeMap::new();
        for v in 0..8usize {
            let bits: Vec<u8> = (0..bits_per_axis)
                .rev()
                .map(|i| ((v >> i) & 1) as u8)
                .collect();
            let level = pam_level(&bits) as i64;
            level_to_bits.insert(level, v);
        }
        let levels: Vec<i64> = level_to_bits.keys().copied().collect();
        assert_eq!(levels, vec![-7, -5, -3, -1, 1, 3, 5, 7]);
        for w in levels.windows(2) {
            let a = level_to_bits[&w[0]];
            let b = level_to_bits[&w[1]];
            assert_eq!((a ^ b).count_ones(), 1, "levels {w:?}");
        }
    }

    #[test]
    fn zero_bits_map_positive() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let s = m.modulate(&vec![0u8; m.bits_per_symbol()])[0];
            assert!(s.re > 0.0 && s.im > 0.0, "{m}");
        }
    }

    #[test]
    fn noiseless_roundtrip_all_modulations() {
        let mut rng = seeded(5);
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let bits = random_bits(&mut rng, m.bits_per_symbol() * 100);
            let symbols = m.modulate(&bits);
            let hard = m.demodulate_hard(&symbols);
            assert_eq!(hard, bits, "{m}");
        }
    }

    #[test]
    fn soft_llr_signs_match_bits_noiseless() {
        let mut rng = seeded(6);
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let bits = random_bits(&mut rng, m.bits_per_symbol() * 50);
            let symbols = m.modulate(&bits);
            let llrs = m.demodulate_soft(&symbols, 0.1);
            for (i, (&b, &l)) in bits.iter().zip(&llrs).enumerate() {
                assert_eq!(b, crate::bits::hard_decision(l), "{m} bit {i}");
            }
        }
    }

    #[test]
    fn qpsk_llr_matches_closed_form() {
        // For QPSK, the max-log LLR reduces to 2·√2·y/σ² per axis
        // (with unit-energy normalization the axis levels are ±1/√2).
        let m = Modulation::Qpsk;
        let y = Complex64::new(0.3, -0.2);
        let nv = 0.5;
        let llrs = m.demodulate_soft(&[y], nv);
        let expect_i = 2.0 * y.re * std::f64::consts::SQRT_2 / nv;
        let expect_q = 2.0 * y.im * std::f64::consts::SQRT_2 / nv;
        assert!(
            (llrs[0] - expect_i).abs() < 1e-9,
            "{} vs {expect_i}",
            llrs[0]
        );
        assert!((llrs[1] - expect_q).abs() < 1e-9);
    }

    #[test]
    fn llr_magnitude_scales_inverse_noise() {
        let m = Modulation::Qam64;
        let bits = vec![0, 1, 1, 0, 1, 0];
        let s = m.modulate(&bits);
        let l1 = m.demodulate_soft(&s, 0.1);
        let l2 = m.demodulate_soft(&s, 0.2);
        for (a, b) in l1.iter().zip(&l2) {
            assert!((a / b - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn denser_constellation_has_higher_raw_ber() {
        // Sanity: at identical symbol SNR, 64QAM has a higher uncoded BER
        // than QPSK.
        let mut rng = seeded(8);
        let snr = 12.0_f64;
        let nv = 1.0 / dsp::stats::db_to_linear(snr);
        let mut ber = [0.0f64; 2];
        for (j, m) in [Modulation::Qpsk, Modulation::Qam64].iter().enumerate() {
            let bits = random_bits(&mut rng, m.bits_per_symbol() * 2000);
            let tx = m.modulate(&bits);
            let rx: Vec<Complex64> = tx
                .iter()
                .map(|&s| s + complex_gaussian(&mut rng, nv))
                .collect();
            let hard = m.demodulate_hard(&rx);
            ber[j] = crate::bits::hamming_distance(&hard, &bits) as f64 / bits.len() as f64;
        }
        assert!(
            ber[1] > ber[0],
            "64QAM BER {} should exceed QPSK {}",
            ber[1],
            ber[0]
        );
    }

    proptest! {
        #[test]
        fn modulate_demodulate_roundtrip(seed in 0u64..100) {
            let mut rng = seeded(seed);
            let m = Modulation::Qam64;
            let bits = random_bits(&mut rng, 6 * 20);
            prop_assert_eq!(m.demodulate_hard(&m.modulate(&bits)), bits);
        }

        #[test]
        fn llr_antisymmetric_in_y(y in -2.0f64..2.0) {
            // Flipping the received point flips all LLR signs for QPSK.
            let m = Modulation::Qpsk;
            let a = m.demodulate_soft(&[Complex64::new(y, y)], 0.3);
            let b = m.demodulate_soft(&[Complex64::new(-y, -y)], 0.3);
            prop_assert!((a[0] + b[0]).abs() < 1e-9);
            prop_assert!((a[1] + b[1]).abs() < 1e-9);
        }
    }
}
