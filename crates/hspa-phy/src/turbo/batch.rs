//! Batched lockstep Max-Log-MAP decoding across packet lanes.
//!
//! The fixed 8-state trellis of the UMTS turbo code vectorizes poorly
//! *within* one packet (each step's eight states fit one SIMD register
//! but carry loop dependencies), and extremely well *across* packets:
//! N independent codewords of the same block length can run the exact
//! same forward/backward recursions in lockstep, with every metric held
//! as an N-lane array. [`TurboBatchScratch`] stages up to N packets and
//! [`super::TurboCode::decode_batch`] decodes them together over a
//! structure-of-arrays trellis whose innermost dimension is the lane, so
//! the hand-unrolled 8-state sweeps compile to lane-wide SIMD.
//!
//! # Lane-for-lane bit-identity
//!
//! Every operation in the lockstep kernels is elementwise across lanes
//! (adds, subtractions, negations, maxima, broadcast scaling) or a
//! lane-local gather through the interleaver, so lane `l` of a batched
//! decode performs **the same scalar operation sequence** as
//! [`super::TurboCode::decode_into`] on that codeword alone. Rust never
//! contracts or reorders IEEE-754 arithmetic, so the outputs — hard
//! bits, posterior LLR bit patterns, iteration counts — are identical to
//! the serial path for any batch size. `tests/decode_batch.rs` pins the
//! property with proptests; the golden corpus pins the serial reference.
//!
//! # Early finishers and lane draining
//!
//! Lanes stop independently (agreement early stop, optional per-lane
//! CRC check): a finished lane's outputs are frozen at the moment its
//! scalar counterpart would have returned. At every iteration boundary
//! the group *drains*: surviving lanes are repacked to the front and the
//! kernel narrows (8 → 4 → 2 → 1 lanes) so finished lanes stop costing
//! vector width — a group whose lanes converge at iterations
//! `[1,1,…,8]` pays ≈ one 8-wide iteration plus seven 1-wide ones, not
//! eight 8-wide. Repacking moves lane data without touching its values
//! and every kernel op is elementwise, so draining preserves the
//! lane-for-lane bit-identity. Batches wider than the widest kernel run
//! as groups of 8 (a final partial group starts at the narrowest width
//! that fits); a single leftover lane uses the scalar reference decoder.

use dsp::maxstar::{
    lanes_add, lanes_half, lanes_load, lanes_max, lanes_neg, lanes_scale, lanes_store, lanes_sub,
    LlrArith,
};

use super::decoder::{
    AccuracyTier, DecodeResult, DecoderConfig, MaxLogMapDecoder, TurboScratch, EXTRINSIC_SCALE,
};
use super::interleaver::TurboInterleaver;
use super::rsc::{RSC_STATES, TAIL_BITS};

/// Per-lane validity check for batched decoding: receives the lane index
/// and that lane's current hard decisions (the CRC in the simulator).
pub type BatchStopCheck<'c> = Option<&'c dyn Fn(usize, &[u8]) -> bool>;

/// One precision's structure-of-arrays trellis workspace. All vectors
/// are `[step][state/metric][lane]` with the lane contiguous innermost,
/// sized for the widest lockstep group and reused (never shrunk) across
/// groups and batches.
#[derive(Debug, Clone, Default)]
struct LaneBuffers<T> {
    sys1: Vec<T>,
    p1: Vec<T>,
    sys2: Vec<T>,
    p2: Vec<T>,
    apriori1: Vec<T>,
    apriori2: Vec<T>,
    ext1: Vec<T>,
    ext2: Vec<T>,
    post1: Vec<T>,
    post2: Vec<T>,
    posterior: Vec<T>,
    alpha: Vec<T>,
    alpha_ckpt: Vec<T>,
}

impl<T> LaneBuffers<T> {
    fn heap_capacities(&self, out: &mut Vec<usize>) {
        out.extend([
            self.sys1.capacity(),
            self.p1.capacity(),
            self.sys2.capacity(),
            self.p2.capacity(),
            self.apriori1.capacity(),
            self.apriori2.capacity(),
            self.ext1.capacity(),
            self.ext2.capacity(),
            self.post1.capacity(),
            self.post2.capacity(),
            self.posterior.capacity(),
            self.alpha.capacity(),
            self.alpha_ckpt.capacity(),
        ]);
    }
}

/// Reusable workspace and output storage of one batched decode.
///
/// Usage: [`TurboBatchScratch::begin_batch`] with the codeword length,
/// [`TurboBatchScratch::push_lane`] once per packet, then
/// [`super::TurboCode::decode_batch`]; per-lane results are read back
/// through [`TurboBatchScratch::bits`] / [`TurboBatchScratch::llrs`] /
/// [`TurboBatchScratch::iterations_run`]. Every buffer (LLR staging,
/// both precisions' trellis workspaces, the scalar remainder workspace
/// and the output arrays) is reused in place, so steady-state batched
/// decoding performs zero heap allocations —
/// `tests/alloc_regression.rs` pins the invariant via
/// [`TurboBatchScratch::heap_capacities`].
#[derive(Debug, Clone, Default)]
pub struct TurboBatchScratch {
    k: usize,
    coded_len: usize,
    lanes: usize,
    /// Lane-major staging of raw channel LLRs (`lanes × coded_len`).
    staging: Vec<f64>,
    /// Lane-major hard decisions (`lanes × k`).
    out_bits: Vec<u8>,
    /// Lane-major posterior LLRs, widened to `f64` (`lanes × k`).
    out_llrs: Vec<f64>,
    /// Turbo iterations executed per lane.
    out_iters: Vec<usize>,
    /// Hard-decision staging for per-lane stop checks (`k`).
    bits_tmp: Vec<u8>,
    f64_lanes: LaneBuffers<f64>,
    f32_lanes: LaneBuffers<f32>,
    /// Scalar-path workspace for the odd remainder lane.
    scalar: TurboScratch,
    scalar_out: DecodeResult,
}

impl TurboBatchScratch {
    /// Fresh workspace; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new batch of codewords of `coded_len` LLRs each,
    /// discarding previously staged lanes (capacity is retained).
    pub fn begin_batch(&mut self, coded_len: usize) {
        self.coded_len = coded_len;
        self.lanes = 0;
        self.staging.clear();
    }

    /// Stages one codeword's channel LLRs as the next lane; returns the
    /// lane index.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` differs from the `begin_batch` length.
    pub fn push_lane(&mut self, llrs: &[f64]) -> usize {
        assert_eq!(llrs.len(), self.coded_len, "lane LLR length mismatch");
        self.staging.extend_from_slice(llrs);
        self.lanes += 1;
        self.lanes - 1
    }

    /// Lanes currently staged (reset by `begin_batch`).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Hard-decision bits of `lane` after a decode.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn bits(&self, lane: usize) -> &[u8] {
        assert!(lane < self.lanes, "lane out of range");
        &self.out_bits[lane * self.k..][..self.k]
    }

    /// Posterior LLRs of `lane` after a decode (widened to `f64` on the
    /// `Fast32` tier).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn llrs(&self, lane: usize) -> &[f64] {
        assert!(lane < self.lanes, "lane out of range");
        &self.out_llrs[lane * self.k..][..self.k]
    }

    /// Turbo iterations executed for `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn iterations_run(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "lane out of range");
        self.out_iters[lane]
    }

    /// Appends the capacity of every owned heap buffer to `out` (stable
    /// order) — the steady-state zero-allocation invariant of batched
    /// decoding is "this snapshot stops changing once warm".
    pub fn heap_capacities(&self, out: &mut Vec<usize>) {
        out.extend([
            self.staging.capacity(),
            self.out_bits.capacity(),
            self.out_llrs.capacity(),
            self.out_iters.capacity(),
            self.bits_tmp.capacity(),
        ]);
        self.f64_lanes.heap_capacities(out);
        self.f32_lanes.heap_capacities(out);
        self.scalar.heap_capacities(out);
        out.push(self.scalar_out.bits.capacity());
        out.push(self.scalar_out.llrs.capacity());
    }
}

/// Decodes every staged lane of `batch` in lockstep groups (entry point
/// behind [`super::TurboCode::decode_batch`]).
pub(super) fn decode_batch(
    k: usize,
    interleaver: &TurboInterleaver,
    cfg: DecoderConfig,
    batch: &mut TurboBatchScratch,
    stop: BatchStopCheck<'_>,
) {
    let coded_len = 3 * k + 4 * TAIL_BITS;
    assert_eq!(
        batch.coded_len, coded_len,
        "begin_batch length must match the codec"
    );
    batch.k = k;
    let TurboBatchScratch {
        lanes,
        staging,
        out_bits,
        out_llrs,
        out_iters,
        bits_tmp,
        f64_lanes,
        f32_lanes,
        scalar,
        scalar_out,
        ..
    } = batch;
    let lanes = *lanes;
    // Every output element is written exactly once per decode (each lane
    // is recorded the moment it finishes), so the arrays are resized
    // without clearing — stale contents are never observable.
    reuse_buf(out_bits, lanes * k, 0);
    reuse_buf(out_llrs, lanes * k, 0.0);
    reuse_buf(out_iters, lanes, 0);
    if lanes == 0 {
        return;
    }
    let perm = interleaver.permutation();
    let inv = interleaver.inverse();
    match cfg.tier {
        AccuracyTier::Exact | AccuracyTier::EarlyStop => {
            let mut ctx = GroupCtx {
                k,
                n: k + TAIL_BITS,
                perm,
                inv,
                iters: cfg.iterations.max(1),
                out_bits: &mut out_bits[..],
                out_llrs: &mut out_llrs[..],
                out_iters: &mut out_iters[..],
                bits_tmp: &mut *bits_tmp,
                stop,
            };
            let base = run_lockstep::<f64>(staging, coded_len, lanes, f64_lanes, &mut ctx);
            if base < lanes {
                // Odd remainder lane: the reference scalar decoder (by
                // construction exactly "today's path").
                let lane = base;
                let llrs = &staging[lane * coded_len..][..coded_len];
                let dec = MaxLogMapDecoder::new(k, interleaver);
                match stop {
                    Some(stop_fn) => {
                        let wrapped = |bits: &[u8]| stop_fn(lane, bits);
                        dec.decode_into_with_stop(
                            llrs,
                            cfg.iterations,
                            scalar,
                            scalar_out,
                            &wrapped,
                        );
                    }
                    None => dec.decode_into(llrs, cfg.iterations, scalar, scalar_out),
                }
                out_bits[lane * k..][..k].copy_from_slice(&scalar_out.bits);
                out_llrs[lane * k..][..k].copy_from_slice(&scalar_out.llrs);
                out_iters[lane] = scalar_out.iterations_run;
            }
        }
        AccuracyTier::Fast32 => {
            let mut ctx = GroupCtx {
                k,
                n: k + TAIL_BITS,
                perm,
                inv,
                iters: cfg.iterations.max(1),
                out_bits: &mut out_bits[..],
                out_llrs: &mut out_llrs[..],
                out_iters: &mut out_iters[..],
                bits_tmp: &mut *bits_tmp,
                stop,
            };
            let base = run_lockstep::<f32>(staging, coded_len, lanes, f32_lanes, &mut ctx);
            if base < lanes {
                // The single-lane instantiation of the same kernel *is*
                // the scalar Fast32 reference.
                run_group::<f32, 1>(staging, coded_len, base, 1, f32_lanes, &mut ctx);
            }
        }
    }
}

/// The widest lockstep group; `done`/lane-map scratch arrays are sized
/// for it regardless of the instantiated kernel width.
const MAX_GROUP: usize = 8;

/// Trellis-window length (in steps) of the checkpointed alpha recompute
/// inside [`siso_group`]. The forward recursion stores an alpha row only
/// at the head of each window; the fused backward/output pass
/// regenerates one window of rows at a time into a buffer that stays L1
/// resident (32 steps × 8 states × 8 lanes × 8 bytes = 16 KiB at the
/// widest `f64` group) instead of streaming the full `n × 8 × L` trellis
/// through the cache hierarchy twice per SISO pass — the kernel is
/// memory-bound, so the ~2.4× cut in trellis traffic buys more than the
/// extra `k` recompute steps cost. Regeneration replays the identical
/// per-step op sequence from the checkpoint, so alpha values — and every
/// output derived from them — are bit-identical to the one-pass form.
const ALPHA_WINDOW: usize = 32;

/// Loop-invariant context of one batched decode: problem shape,
/// interleaver views, iteration budget, per-lane stop check and the
/// lane-major output arrays — shared by every width a draining group
/// passes through.
struct GroupCtx<'a, 'c> {
    k: usize,
    n: usize,
    perm: &'a [usize],
    inv: &'a [usize],
    iters: usize,
    out_bits: &'a mut [u8],
    out_llrs: &'a mut [f64],
    out_iters: &'a mut [usize],
    bits_tmp: &'a mut Vec<u8>,
    stop: BatchStopCheck<'c>,
}

/// Sizes `buf` to exactly `len` elements without zeroing contents that
/// are already there: the hot path re-dimensions the same buffers to the
/// same sizes every wave, where this is free. `fill` only seeds growth.
fn reuse_buf<T: Copy>(buf: &mut Vec<T>, len: usize, fill: T) {
    if buf.len() != len {
        buf.resize(len, fill);
    }
}

/// Narrowest supported lockstep width that fits `live` lanes.
fn lane_width(live: usize) -> usize {
    match live {
        0 | 1 => 1,
        2 => 2,
        3 | 4 => 4,
        _ => MAX_GROUP,
    }
}

/// Runs lockstep groups of 8 lanes, then one final group at the
/// narrowest width that fits the remainder (unused slots in a padded
/// group are dead weight that the first drain discards). Returns the
/// index of the first unprocessed lane: `lanes`, unless exactly one lane
/// remains, which callers route to their scalar reference path.
fn run_lockstep<T: LlrArith>(
    staging: &[f64],
    coded_len: usize,
    lanes: usize,
    bufs: &mut LaneBuffers<T>,
    ctx: &mut GroupCtx<'_, '_>,
) -> usize {
    let mut base = 0;
    while lanes - base >= 8 {
        run_group::<T, 8>(staging, coded_len, base, 8, bufs, ctx);
        base += 8;
    }
    match lanes - base {
        0 | 1 => base,
        2 => {
            run_group::<T, 2>(staging, coded_len, base, 2, bufs, ctx);
            lanes
        }
        r @ (3 | 4) => {
            run_group::<T, 4>(staging, coded_len, base, r, bufs, ctx);
            lanes
        }
        r => {
            run_group::<T, 8>(staging, coded_len, base, r, bufs, ctx);
            lanes
        }
    }
}

/// Decodes lanes `base..base + count` (`count <= L`) in lockstep,
/// mirroring `MaxLogMapDecoder::decode_internal` lane for lane: same
/// demux, same iteration control (agreement break before the optional
/// stop check), same output snapshots. A lane's outputs are recorded the
/// moment its scalar counterpart would have returned; at the next
/// iteration boundary the group drains finished lanes and narrows.
fn run_group<T: LlrArith, const L: usize>(
    staging: &[f64],
    coded_len: usize,
    base: usize,
    count: usize,
    bufs: &mut LaneBuffers<T>,
    ctx: &mut GroupCtx<'_, '_>,
) {
    debug_assert!(count >= 1 && count <= L);
    let k = ctx.k;
    let n = ctx.n;
    // Only `apriori1` carries a semantic initial value (all-zero
    // a-priori); every other buffer is fully written before it is read —
    // the kernel does compute on whatever garbage sits in dead slots
    // `count..L`, but those slots are never read out, so the buffers are
    // resized without the ~400 KiB of per-group zero fill.
    reuse_buf(&mut bufs.sys1, n * L, T::ZERO);
    reuse_buf(&mut bufs.p1, n * L, T::ZERO);
    reuse_buf(&mut bufs.sys2, n * L, T::ZERO);
    reuse_buf(&mut bufs.p2, n * L, T::ZERO);
    bufs.apriori1.clear();
    bufs.apriori1.resize(k * L, T::ZERO);
    reuse_buf(&mut bufs.apriori2, k * L, T::ZERO);
    reuse_buf(&mut bufs.ext1, k * L, T::ZERO);
    reuse_buf(&mut bufs.ext2, k * L, T::ZERO);
    reuse_buf(&mut bufs.post1, k * L, T::ZERO);
    reuse_buf(&mut bufs.post2, k * L, T::ZERO);
    reuse_buf(&mut bufs.posterior, k * L, T::ZERO);
    reuse_buf(&mut bufs.alpha, ALPHA_WINDOW * RSC_STATES * L, T::NEG_INF);
    reuse_buf(
        &mut bufs.alpha_ckpt,
        k.div_ceil(ALPHA_WINDOW) * RSC_STATES * L,
        T::NEG_INF,
    );

    // Demux each lane's codeword into the SoA observation streams
    // (exactly the scalar decoder's sys/parity/tail split, narrowed to T
    // at the boundary). Step-major loop order: each 64-byte lane row of
    // the four destination streams is filled in one visit instead of
    // being re-dirtied once per lane. Dead slots `count..L` hold garbage
    // that live lanes never see (every kernel op is elementwise).
    for t in 0..k {
        let pt = ctx.perm[t];
        for l in 0..count {
            let lane = &staging[(base + l) * coded_len..][..3 * k];
            bufs.sys1[t * L + l] = T::from_f64(lane[t]);
            bufs.p1[t * L + l] = T::from_f64(lane[k + t]);
            bufs.sys2[t * L + l] = T::from_f64(lane[pt]);
            bufs.p2[t * L + l] = T::from_f64(lane[2 * k + t]);
        }
    }
    for t in 0..TAIL_BITS {
        for l in 0..count {
            let lane = &staging[(base + l) * coded_len..][..coded_len];
            let tail1 = &lane[3 * k..3 * k + 2 * TAIL_BITS];
            let tail2 = &lane[3 * k + 2 * TAIL_BITS..];
            bufs.sys1[(k + t) * L + l] = T::from_f64(tail1[2 * t]);
            bufs.p1[(k + t) * L + l] = T::from_f64(tail1[2 * t + 1]);
            bufs.sys2[(k + t) * L + l] = T::from_f64(tail2[2 * t]);
            bufs.p2[(k + t) * L + l] = T::from_f64(tail2[2 * t + 1]);
        }
    }

    let mut lane_of_slot = [0usize; MAX_GROUP];
    for (s, slot) in lane_of_slot.iter_mut().enumerate().take(count) {
        *slot = base + s;
    }
    iterate_group::<T, L>(1, count, lane_of_slot, bufs, ctx);
}

/// The compaction-aware iteration driver at lockstep width `L`: runs
/// turbo iterations over the `m` live lanes held in slots `0..m` of
/// `bufs` (slots `m..L` are dead weight whose values are never read).
/// When lanes finish, the survivors are repacked to the front and the
/// driver tail-recurses at the narrowest width that still fits, carrying
/// only the inter-iteration state: the four observation streams and
/// `apriori1`. Repacking copies lane values verbatim and every kernel op
/// is elementwise, so each surviving lane's value stream is unchanged.
fn iterate_group<T: LlrArith, const L: usize>(
    start_it: usize,
    m: usize,
    lane_of_slot: [usize; MAX_GROUP],
    bufs: &mut LaneBuffers<T>,
    ctx: &mut GroupCtx<'_, '_>,
) {
    let k = ctx.k;
    let n = ctx.n;
    let scale = T::from_f64(EXTRINSIC_SCALE);
    let mut done = [false; MAX_GROUP];
    let mut it = start_it;
    loop {
        siso_group::<T, L>(
            &bufs.sys1[..n * L],
            &bufs.p1[..n * L],
            &bufs.apriori1[..k * L],
            k,
            &mut bufs.alpha[..ALPHA_WINDOW * RSC_STATES * L],
            &mut bufs.alpha_ckpt[..k.div_ceil(ALPHA_WINDOW) * RSC_STATES * L],
            &mut bufs.ext1[..k * L],
            &mut bufs.post1[..k * L],
        );
        if let Some(stop_fn) = ctx.stop {
            for s in 0..m {
                if done[s] {
                    continue;
                }
                hard_lane::<T, L>(&bufs.post1, s, k, ctx.bits_tmp);
                if stop_fn(lane_of_slot[s], ctx.bits_tmp) {
                    record_lane::<T, L>(&bufs.post1, s, lane_of_slot[s], k, ctx, it);
                    done[s] = true;
                }
            }
            if done[..m].iter().all(|&d| d) {
                return;
            }
        }
        for t in 0..k {
            let v: [T; L] = lanes_load(&bufs.ext1, ctx.perm[t] * L);
            lanes_store(&mut bufs.apriori2, t * L, lanes_scale(v, scale));
        }
        siso_group::<T, L>(
            &bufs.sys2[..n * L],
            &bufs.p2[..n * L],
            &bufs.apriori2[..k * L],
            k,
            &mut bufs.alpha[..ALPHA_WINDOW * RSC_STATES * L],
            &mut bufs.alpha_ckpt[..k.div_ceil(ALPHA_WINDOW) * RSC_STATES * L],
            &mut bufs.ext2[..k * L],
            &mut bufs.post2[..k * L],
        );
        for t in 0..k {
            let e: [T; L] = lanes_load(&bufs.ext2, ctx.inv[t] * L);
            lanes_store(&mut bufs.apriori1, t * L, lanes_scale(e, scale));
            let p: [T; L] = lanes_load(&bufs.post2, ctx.inv[t] * L);
            lanes_store(&mut bufs.posterior, t * L, p);
        }
        // Lane-parallel agreement scan: one pass over the `[step][lane]`
        // blocks settles every slot's flag at once with branchless sign
        // compares the compiler vectorizes, instead of `m` strided scalar
        // scans. Same predicate per slot (an order-independent `all`), so
        // the same decision as the scalar loop.
        let mut disagree = [false; L];
        for t in 0..k {
            let a: [T; L] = lanes_load(&bufs.post1, t * L);
            let b: [T; L] = lanes_load(&bufs.posterior, t * L);
            for (d, (&x, y)) in disagree.iter_mut().zip(a.iter().zip(b)) {
                *d |= (x >= T::ZERO) != (y >= T::ZERO);
            }
        }
        for s in 0..m {
            if done[s] {
                continue;
            }
            // Agreement early stop first, then the optional stop check —
            // the scalar loop's exact order.
            if !disagree[s] {
                record_lane::<T, L>(&bufs.posterior, s, lane_of_slot[s], k, ctx, it);
                done[s] = true;
                continue;
            }
            if let Some(stop_fn) = ctx.stop {
                hard_lane::<T, L>(&bufs.posterior, s, k, ctx.bits_tmp);
                if stop_fn(lane_of_slot[s], ctx.bits_tmp) {
                    record_lane::<T, L>(&bufs.posterior, s, lane_of_slot[s], k, ctx, it);
                    done[s] = true;
                }
            }
        }
        let live = done[..m].iter().filter(|&&d| !d).count();
        if live == 0 {
            return;
        }
        if it >= ctx.iters {
            break;
        }
        let w = lane_width(live);
        if w < L {
            // Drain: repack the survivors to the front and narrow. Only
            // the observation streams and apriori1 carry information into
            // the next iteration; everything else is recomputed.
            let mut next_map = [0usize; MAX_GROUP];
            let mut keep = [0usize; MAX_GROUP];
            let mut idx = 0;
            for (s, &lane) in lane_of_slot.iter().enumerate().take(m) {
                if !done[s] {
                    keep[idx] = s;
                    next_map[idx] = lane;
                    idx += 1;
                }
            }
            let keep = &keep[..idx];
            repack_stream(&mut bufs.sys1, n, L, w, keep);
            repack_stream(&mut bufs.p1, n, L, w, keep);
            repack_stream(&mut bufs.sys2, n, L, w, keep);
            repack_stream(&mut bufs.p2, n, L, w, keep);
            repack_stream(&mut bufs.apriori1, k, L, w, keep);
            match w {
                1 => iterate_group::<T, 1>(it + 1, idx, next_map, bufs, ctx),
                2 => iterate_group::<T, 2>(it + 1, idx, next_map, bufs, ctx),
                _ => iterate_group::<T, 4>(it + 1, idx, next_map, bufs, ctx),
            }
            return;
        }
        it += 1;
    }
    // Iteration budget exhausted: unfinished lanes return the latest
    // posterior with the full iteration count, like the scalar decoder.
    for s in 0..m {
        if !done[s] {
            record_lane::<T, L>(&bufs.posterior, s, lane_of_slot[s], k, ctx, it);
        }
    }
}

/// Repacks the surviving lanes of a `[step][lane]` stream from width
/// `from_w` to the smaller width `to_w`, keeping slots `keep` in order.
/// In place and forward-safe: every destination index is `<=` its source
/// index and strictly below every later source index.
fn repack_stream<T: Copy>(buf: &mut [T], steps: usize, from_w: usize, to_w: usize, keep: &[usize]) {
    debug_assert!(to_w < from_w && keep.len() <= to_w);
    for t in 0..steps {
        let src = t * from_w;
        let dst = t * to_w;
        for (ns, &os) in keep.iter().enumerate() {
            buf[dst + ns] = buf[src + os];
        }
    }
}

/// Snapshots slot `slot` of a `[step][lane]` posterior block into the
/// lane-major output arrays (bits, widened LLRs, iteration count) of
/// batch lane `lane`.
fn record_lane<T: LlrArith, const L: usize>(
    src: &[T],
    slot: usize,
    lane: usize,
    k: usize,
    ctx: &mut GroupCtx<'_, '_>,
    it: usize,
) {
    let bits = &mut ctx.out_bits[lane * k..][..k];
    let llrs = &mut ctx.out_llrs[lane * k..][..k];
    for t in 0..k {
        let v = src[t * L + slot];
        llrs[t] = v.to_f64();
        bits[t] = if v >= T::ZERO { 0 } else { 1 };
    }
    ctx.out_iters[lane] = it;
}

/// Hard decisions of lane `l` from a `[step][lane]` posterior block
/// (positive favours 0), reusing `out`.
fn hard_lane<T: LlrArith, const L: usize>(src: &[T], l: usize, k: usize, out: &mut Vec<u8>) {
    out.clear();
    out.extend((0..k).map(|t| if src[t * L + l] >= T::ZERO { 0u8 } else { 1u8 }));
}

/// One lockstep SISO Max-Log-MAP pass over `L` terminated RSC trellises.
///
/// A lane-array transliteration of the scalar `siso` in
/// `decoder.rs` — same branch-metric factoring (`[g0, g1]` stored,
/// `g2 = -g1`, `g3 = -g0`), same hand-unrolled gather wiring of the
/// fixed 8-state trellis, same fused backward/output sweep, and every
/// three-term sum keeps the `(alpha + gamma) + beta` association — so
/// each lane's value stream is bit-identical to the scalar pass. All
/// buffers are `[step][state/metric][lane]` flat arrays; with
/// `L ∈ {8, 4, 2}` the lane arrays compile to full-width SIMD on the
/// fixed trellis (see `crates/bench/benches/kernels.rs` for the
/// scalar-vs-lockstep microbenchmarks).
///
/// Unlike the scalar pass, neither alpha nor the branch metrics are
/// materialized for the whole trellis: the forward recursion stores one
/// checkpoint row per [`ALPHA_WINDOW`] steps (`alpha_ckpt`) and the
/// output sweep regenerates each window of rows into the small `alpha`
/// buffer on demand, newest window first, while beta carries across
/// windows uninterrupted. Branch metrics are recomputed from the
/// `sys`/`par`/`apriori` streams wherever they are needed — the
/// recompute repeats the forward recursion's exact op sequence on the
/// same inputs, so every regenerated value matches the forward pass to
/// the last bit and both transforms are purely cache-locality ones.
#[allow(clippy::too_many_arguments)]
fn siso_group<T: LlrArith, const L: usize>(
    sys: &[T],
    par: &[T],
    apriori: &[T],
    k: usize,
    alpha: &mut [T],
    alpha_ckpt: &mut [T],
    ext: &mut [T],
    post: &mut [T],
) {
    let n = k + TAIL_BITS;
    debug_assert_eq!(sys.len(), n * L);
    debug_assert_eq!(par.len(), n * L);
    debug_assert_eq!(apriori.len(), k * L);
    debug_assert_eq!(alpha.len(), ALPHA_WINDOW * RSC_STATES * L);
    debug_assert_eq!(alpha_ckpt.len(), k.div_ceil(ALPHA_WINDOW) * RSC_STATES * L);

    let zero = [T::ZERO; L];
    let ninf = [T::NEG_INF; L];

    // Forward recursion, stashing an alpha checkpoint at the head of
    // each window. Only rows `0..k` feed the output sweep, so no
    // checkpoints fall in the tail.
    let (mut a0, mut a1, mut a2, mut a3, mut a4, mut a5, mut a6, mut a7) =
        (zero, ninf, ninf, ninf, ninf, ninf, ninf, ninf);
    for t in 0..n {
        if t < k && t % ALPHA_WINDOW == 0 {
            let row = (t / ALPHA_WINDOW) * RSC_STATES * L;
            lanes_store(alpha_ckpt, row, a0);
            lanes_store(alpha_ckpt, row + L, a1);
            lanes_store(alpha_ckpt, row + 2 * L, a2);
            lanes_store(alpha_ckpt, row + 3 * L, a3);
            lanes_store(alpha_ckpt, row + 4 * L, a4);
            lanes_store(alpha_ckpt, row + 5 * L, a5);
            lanes_store(alpha_ckpt, row + 6 * L, a6);
            lanes_store(alpha_ckpt, row + 7 * L, a7);
        }
        let la = if t < k {
            lanes_load(apriori, t * L)
        } else {
            zero
        };
        let spa = lanes_add(lanes_load(sys, t * L), la);
        let lp: [T; L] = lanes_load(par, t * L);
        let g0 = lanes_half(lanes_add(spa, lp));
        let g1 = lanes_half(lanes_sub(spa, lp));
        let g2 = lanes_neg(g1);
        let g3 = lanes_neg(g0);
        let b0 = lanes_max(lanes_add(a0, g0), lanes_add(a4, g3));
        let b1 = lanes_max(lanes_add(a0, g3), lanes_add(a4, g0));
        let b2 = lanes_max(lanes_add(a1, g1), lanes_add(a5, g2));
        let b3 = lanes_max(lanes_add(a1, g2), lanes_add(a5, g1));
        let b4 = lanes_max(lanes_add(a2, g2), lanes_add(a6, g1));
        let b5 = lanes_max(lanes_add(a2, g1), lanes_add(a6, g2));
        let b6 = lanes_max(lanes_add(a3, g3), lanes_add(a7, g0));
        let b7 = lanes_max(lanes_add(a3, g0), lanes_add(a7, g3));
        (a0, a1, a2, a3, a4, a5, a6, a7) = (b0, b1, b2, b3, b4, b5, b6, b7);
    }

    // Backward recursion (terminated: final state 0), fused with the
    // extrinsic/posterior accumulation. Tail steps only advance beta.
    let (mut bb0, mut bb1, mut bb2, mut bb3, mut bb4, mut bb5, mut bb6, mut bb7) =
        (zero, ninf, ninf, ninf, ninf, ninf, ninf, ninf);
    for t in (k..n).rev() {
        // Tail branch metrics, recomputed with the forward pass's exact
        // op sequence (including the `+ 0` of the absent a-priori, which
        // keeps a hypothetical `-0.0` observation bit-identical).
        let spa = lanes_add(lanes_load(sys, t * L), zero);
        let lp: [T; L] = lanes_load(par, t * L);
        let g0 = lanes_half(lanes_add(spa, lp));
        let g1 = lanes_half(lanes_sub(spa, lp));
        let g2 = lanes_neg(g1);
        let g3 = lanes_neg(g0);
        let (n0, n1, n2, n3, n4, n5, n6, n7) = (bb0, bb1, bb2, bb3, bb4, bb5, bb6, bb7);
        bb0 = lanes_max(lanes_add(g0, n0), lanes_add(g3, n1));
        bb1 = lanes_max(lanes_add(g1, n2), lanes_add(g2, n3));
        bb2 = lanes_max(lanes_add(g1, n5), lanes_add(g2, n4));
        bb3 = lanes_max(lanes_add(g0, n7), lanes_add(g3, n6));
        bb4 = lanes_max(lanes_add(g0, n1), lanes_add(g3, n0));
        bb5 = lanes_max(lanes_add(g1, n3), lanes_add(g2, n2));
        bb6 = lanes_max(lanes_add(g1, n4), lanes_add(g2, n5));
        bb7 = lanes_max(lanes_add(g0, n6), lanes_add(g3, n7));
    }
    for w0 in (0..k).step_by(ALPHA_WINDOW).rev() {
        let w1 = (w0 + ALPHA_WINDOW).min(k);
        // Regenerate this window's alpha rows from its checkpoint — the
        // forward pass's op sequence replayed, hence the same values to
        // the last bit.
        {
            let ck = (w0 / ALPHA_WINDOW) * RSC_STATES * L;
            let mut a0: [T; L] = lanes_load(alpha_ckpt, ck);
            let mut a1: [T; L] = lanes_load(alpha_ckpt, ck + L);
            let mut a2: [T; L] = lanes_load(alpha_ckpt, ck + 2 * L);
            let mut a3: [T; L] = lanes_load(alpha_ckpt, ck + 3 * L);
            let mut a4: [T; L] = lanes_load(alpha_ckpt, ck + 4 * L);
            let mut a5: [T; L] = lanes_load(alpha_ckpt, ck + 5 * L);
            let mut a6: [T; L] = lanes_load(alpha_ckpt, ck + 6 * L);
            let mut a7: [T; L] = lanes_load(alpha_ckpt, ck + 7 * L);
            for t in w0..w1 {
                let row = (t - w0) * RSC_STATES * L;
                lanes_store(alpha, row, a0);
                lanes_store(alpha, row + L, a1);
                lanes_store(alpha, row + 2 * L, a2);
                lanes_store(alpha, row + 3 * L, a3);
                lanes_store(alpha, row + 4 * L, a4);
                lanes_store(alpha, row + 5 * L, a5);
                lanes_store(alpha, row + 6 * L, a6);
                lanes_store(alpha, row + 7 * L, a7);
                if t + 1 < w1 {
                    let spa = lanes_add(lanes_load(sys, t * L), lanes_load(apriori, t * L));
                    let lp: [T; L] = lanes_load(par, t * L);
                    let g0 = lanes_half(lanes_add(spa, lp));
                    let g1 = lanes_half(lanes_sub(spa, lp));
                    let g2 = lanes_neg(g1);
                    let g3 = lanes_neg(g0);
                    let b0 = lanes_max(lanes_add(a0, g0), lanes_add(a4, g3));
                    let b1 = lanes_max(lanes_add(a0, g3), lanes_add(a4, g0));
                    let b2 = lanes_max(lanes_add(a1, g1), lanes_add(a5, g2));
                    let b3 = lanes_max(lanes_add(a1, g2), lanes_add(a5, g1));
                    let b4 = lanes_max(lanes_add(a2, g2), lanes_add(a6, g1));
                    let b5 = lanes_max(lanes_add(a2, g1), lanes_add(a6, g2));
                    let b6 = lanes_max(lanes_add(a3, g3), lanes_add(a7, g0));
                    let b7 = lanes_max(lanes_add(a3, g0), lanes_add(a7, g3));
                    (a0, a1, a2, a3, a4, a5, a6, a7) = (b0, b1, b2, b3, b4, b5, b6, b7);
                }
            }
        }
        output_window::<T, L>(
            sys, par, apriori, alpha, ext, post, w0, w1, &mut bb0, &mut bb1, &mut bb2, &mut bb3,
            &mut bb4, &mut bb5, &mut bb6, &mut bb7,
        );
    }
}

/// The fused backward/output sweep over one alpha window (`w0..w1`,
/// alpha rows indexed relative to `w0`), advancing the eight beta
/// registers in place so the recursion carries across windows.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn output_window<T: LlrArith, const L: usize>(
    sys: &[T],
    par: &[T],
    apriori: &[T],
    alpha: &[T],
    ext: &mut [T],
    post: &mut [T],
    w0: usize,
    w1: usize,
    bb0: &mut [T; L],
    bb1: &mut [T; L],
    bb2: &mut [T; L],
    bb3: &mut [T; L],
    bb4: &mut [T; L],
    bb5: &mut [T; L],
    bb6: &mut [T; L],
    bb7: &mut [T; L],
) {
    for t in (w0..w1).rev() {
        let ls: [T; L] = lanes_load(sys, t * L);
        let la: [T; L] = lanes_load(apriori, t * L);
        let lp: [T; L] = lanes_load(par, t * L);
        let spa = lanes_add(ls, la);
        let g0 = lanes_half(lanes_add(spa, lp));
        let g1 = lanes_half(lanes_sub(spa, lp));
        let g2 = lanes_neg(g1);
        let g3 = lanes_neg(g0);
        let (n0, n1, n2, n3, n4, n5, n6, n7) = (*bb0, *bb1, *bb2, *bb3, *bb4, *bb5, *bb6, *bb7);
        let row = (t - w0) * RSC_STATES * L;
        let a0: [T; L] = lanes_load(alpha, row);
        let a1: [T; L] = lanes_load(alpha, row + L);
        let a2: [T; L] = lanes_load(alpha, row + 2 * L);
        let a3: [T; L] = lanes_load(alpha, row + 3 * L);
        let a4: [T; L] = lanes_load(alpha, row + 4 * L);
        let a5: [T; L] = lanes_load(alpha, row + 5 * L);
        let a6: [T; L] = lanes_load(alpha, row + 6 * L);
        let a7: [T; L] = lanes_load(alpha, row + 7 * L);
        let max0 = lanes_max(
            lanes_max(
                lanes_max(
                    lanes_add(lanes_add(a0, g0), n0),
                    lanes_add(lanes_add(a1, g1), n2),
                ),
                lanes_max(
                    lanes_add(lanes_add(a2, g1), n5),
                    lanes_add(lanes_add(a3, g0), n7),
                ),
            ),
            lanes_max(
                lanes_max(
                    lanes_add(lanes_add(a4, g0), n1),
                    lanes_add(lanes_add(a5, g1), n3),
                ),
                lanes_max(
                    lanes_add(lanes_add(a6, g1), n4),
                    lanes_add(lanes_add(a7, g0), n6),
                ),
            ),
        );
        let max1 = lanes_max(
            lanes_max(
                lanes_max(
                    lanes_add(lanes_add(a0, g3), n1),
                    lanes_add(lanes_add(a1, g2), n3),
                ),
                lanes_max(
                    lanes_add(lanes_add(a2, g2), n4),
                    lanes_add(lanes_add(a3, g3), n6),
                ),
            ),
            lanes_max(
                lanes_max(
                    lanes_add(lanes_add(a4, g3), n0),
                    lanes_add(lanes_add(a5, g2), n2),
                ),
                lanes_max(
                    lanes_add(lanes_add(a6, g2), n5),
                    lanes_add(lanes_add(a7, g3), n7),
                ),
            ),
        );
        let l_val = lanes_sub(max0, max1);
        lanes_store(post, t * L, l_val);
        let e = lanes_sub(lanes_sub(l_val, ls), la);
        lanes_store(ext, t * L, e);
        *bb0 = lanes_max(lanes_add(g0, n0), lanes_add(g3, n1));
        *bb1 = lanes_max(lanes_add(g1, n2), lanes_add(g2, n3));
        *bb2 = lanes_max(lanes_add(g1, n5), lanes_add(g2, n4));
        *bb3 = lanes_max(lanes_add(g0, n7), lanes_add(g3, n6));
        *bb4 = lanes_max(lanes_add(g0, n1), lanes_add(g3, n0));
        *bb5 = lanes_max(lanes_add(g1, n3), lanes_add(g2, n2));
        *bb6 = lanes_max(lanes_add(g1, n4), lanes_add(g2, n5));
        *bb7 = lanes_max(lanes_add(g0, n6), lanes_add(g3, n7));
    }
}

#[cfg(test)]
mod tests {
    use super::super::TurboCode;
    use super::*;
    use dsp::rng::{random_bits, seeded, standard_normal};

    fn noisy_codeword(code: &TurboCode, seed: u64) -> (Vec<u8>, Vec<f64>) {
        let mut rng = seeded(seed);
        let bits = random_bits(&mut rng, code.k());
        let coded = code.encode(&bits);
        let llrs = coded
            .iter()
            .map(|&b| (if b == 0 { 2.0 } else { -2.0 }) + 1.0 * standard_normal(&mut rng))
            .collect();
        (bits, llrs)
    }

    #[test]
    fn exact_batch_matches_scalar_lane_for_lane() {
        let k = 80;
        let code = TurboCode::new(k).unwrap();
        for lanes in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 16] {
            let cases: Vec<_> = (0..lanes)
                .map(|l| noisy_codeword(&code, 1000 + l as u64))
                .collect();
            let mut batch = TurboBatchScratch::new();
            batch.begin_batch(code.coded_len());
            for (_, llrs) in &cases {
                batch.push_lane(llrs);
            }
            code.decode_batch(DecoderConfig::exact(6), &mut batch, None);
            for (l, (_, llrs)) in cases.iter().enumerate() {
                let scalar = code.decode(llrs, 6);
                assert_eq!(batch.bits(l), &scalar.bits[..], "bits, lanes={lanes} l={l}");
                assert_eq!(batch.llrs(l), &scalar.llrs[..], "llrs, lanes={lanes} l={l}");
                assert_eq!(
                    batch.iterations_run(l),
                    scalar.iterations_run,
                    "iters, lanes={lanes} l={l}"
                );
            }
        }
    }

    #[test]
    fn early_stop_batch_matches_scalar_stop_path() {
        let k = 100;
        let code = TurboCode::new(k).unwrap();
        let cases: Vec<_> = (0..5).map(|l| noisy_codeword(&code, 50 + l)).collect();
        let mut batch = TurboBatchScratch::new();
        batch.begin_batch(code.coded_len());
        for (_, llrs) in &cases {
            batch.push_lane(llrs);
        }
        let expected: Vec<Vec<u8>> = cases.iter().map(|(bits, _)| bits.clone()).collect();
        let stop = |lane: usize, cand: &[u8]| cand == expected[lane];
        code.decode_batch(
            DecoderConfig::new(8, AccuracyTier::EarlyStop),
            &mut batch,
            Some(&stop),
        );
        let mut scratch = TurboScratch::new();
        let mut out = DecodeResult::new();
        for (l, (bits, llrs)) in cases.iter().enumerate() {
            let want = bits.clone();
            code.decode_into_with_stop(llrs, 8, &mut scratch, &mut out, &|cand: &[u8]| {
                cand == want
            });
            assert_eq!(batch.bits(l), &out.bits[..], "lane {l}");
            assert_eq!(batch.llrs(l), &out.llrs[..], "lane {l}");
            assert_eq!(batch.iterations_run(l), out.iterations_run, "lane {l}");
        }
    }

    #[test]
    fn fast32_batch_matches_fast32_single_lane() {
        let k = 120;
        let code = TurboCode::new(k).unwrap();
        let cases: Vec<_> = (0..9).map(|l| noisy_codeword(&code, 900 + l)).collect();
        let mut batch = TurboBatchScratch::new();
        batch.begin_batch(code.coded_len());
        for (_, llrs) in &cases {
            batch.push_lane(llrs);
        }
        let cfg = DecoderConfig::new(6, AccuracyTier::Fast32);
        code.decode_batch(cfg, &mut batch, None);
        let mut single = TurboBatchScratch::new();
        for (l, (_, llrs)) in cases.iter().enumerate() {
            single.begin_batch(code.coded_len());
            single.push_lane(llrs);
            code.decode_batch(cfg, &mut single, None);
            assert_eq!(batch.bits(l), single.bits(0), "lane {l}");
            assert_eq!(batch.llrs(l), single.llrs(0), "lane {l}");
            assert_eq!(
                batch.iterations_run(l),
                single.iterations_run(0),
                "lane {l}"
            );
        }
    }

    #[test]
    fn fast32_decodes_clean_blocks() {
        let k = 200;
        let code = TurboCode::new(k).unwrap();
        let (bits, llrs) = noisy_codeword(&code, 7);
        let mut batch = TurboBatchScratch::new();
        batch.begin_batch(code.coded_len());
        batch.push_lane(&llrs);
        code.decode_batch(
            DecoderConfig::new(8, AccuracyTier::Fast32),
            &mut batch,
            None,
        );
        assert_eq!(batch.bits(0), &bits[..]);
    }

    #[test]
    fn batched_steady_state_is_allocation_free() {
        let k = 80;
        let code = TurboCode::new(k).unwrap();
        let mut batch = TurboBatchScratch::new();
        let decode_round = |batch: &mut TurboBatchScratch, seed: u64| {
            batch.begin_batch(code.coded_len());
            for l in 0..8 {
                let (_, llrs) = noisy_codeword(&code, seed + l);
                batch.push_lane(&llrs);
            }
            code.decode_batch(DecoderConfig::exact(6), batch, None);
        };
        decode_round(&mut batch, 1);
        let mut warm = Vec::new();
        batch.heap_capacities(&mut warm);
        for round in 2..6 {
            decode_round(&mut batch, round * 100);
            let mut caps = Vec::new();
            batch.heap_capacities(&mut caps);
            assert_eq!(warm, caps, "round {round} grew a batch buffer");
        }
        let _ = &mut warm;
    }

    #[test]
    fn tier_tokens_roundtrip() {
        for tier in AccuracyTier::ALL {
            assert_eq!(AccuracyTier::parse(tier.as_str()), Some(tier));
            assert_eq!(tier.as_str().parse::<AccuracyTier>().unwrap(), tier);
        }
        assert!(AccuracyTier::parse("bogus").is_none());
    }
}
