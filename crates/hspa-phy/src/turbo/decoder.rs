//! Iterative Max-Log-MAP turbo decoding.
//!
//! Two soft-in/soft-out (SISO) BCJR decoders exchange extrinsic
//! information through the internal interleaver. The max-log
//! approximation (`ln Σ eˣ ≈ max x`) with extrinsic scaling 0.75 is the
//! standard hardware-friendly variant used in HSPA-era receiver ASICs —
//! the same class of decoder the paper's system model assumes.
//!
//! # Hot-path structure
//!
//! The decoder is the dominant cost of every simulated packet, so the
//! inner loops are organized for speed without changing a single output
//! bit versus the straightforward three-sweep BCJR:
//!
//! * **All buffers live in a caller-owned [`TurboScratch`]** — the
//!   trellis `alpha` matrix, per-step branch metrics, the four
//!   de-multiplexed observation streams and every extrinsic/posterior
//!   vector are reused across calls, so steady-state decoding performs
//!   zero heap allocations.
//! * **Branch metrics are precomputed once per trellis step.** A step's
//!   metric only depends on the two sign choices `(input, parity)`, so
//!   the 16 per-state transition gammas collapse to 4 values per step,
//!   computed once instead of re-derived inside the forward sweep, the
//!   backward sweep and the output stage.
//! * **The backward sweep is fused with the extrinsic/posterior
//!   accumulation**, halving trellis traversals and reducing the beta
//!   storage from a full `(n+1) × 8` matrix to two rows.
//! * **An optional caller-supplied stop check** (the CRC in the link
//!   simulator) ends iteration as soon as the current hard decisions
//!   form a valid block, skipping the second half-iteration when
//!   decoder 1 alone already produced a valid block.

use super::interleaver::TurboInterleaver;
use super::rsc::{RSC_STATES, TAIL_BITS};

const NEG_INF: f64 = -1e300;

/// Optional hard-decision validity check threaded through the decode
/// loop (the transport-block CRC in the link simulator).
type StopCheck<'c> = Option<&'c dyn Fn(&[u8]) -> bool>;

/// Default extrinsic scaling factor compensating the max-log optimism.
pub const EXTRINSIC_SCALE: f64 = 0.75;

/// Selectable accuracy/speed tiers of the turbo decoder.
///
/// The tier is part of every campaign point's fingerprint (stores never
/// mix tiers) and each non-default tier pins its own golden corpus in
/// `tests/decode_golden.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccuracyTier {
    /// Bit-exact `f64` Max-Log-MAP with the agreement early stop — the
    /// reference semantics every golden table and CI invariant is pinned
    /// against. Always the default.
    #[default]
    Exact,
    /// `f64` arithmetic plus the CRC-checked early stop
    /// ([`MaxLogMapDecoder::decode_into_with_stop`]): iteration ends as
    /// soon as the hard decisions form a CRC-valid block, skipping the
    /// second SISO pass when decoder 1 alone converged. Faster on
    /// marginal packets; an intermediate iteration can accept a
    /// CRC-valid block that later iterations would walk away from, so
    /// Monte-Carlo outcomes differ slightly from `Exact`.
    EarlyStop,
    /// Single-precision (`f32`) LLR arithmetic throughout the SISO
    /// sweeps, with the agreement early stop. Halves trellis memory
    /// traffic and doubles SIMD lane width; posteriors are widened back
    /// to `f64` on output.
    Fast32,
}

impl AccuracyTier {
    /// Every tier, in fingerprint/documentation order.
    pub const ALL: [AccuracyTier; 3] = [
        AccuracyTier::Exact,
        AccuracyTier::EarlyStop,
        AccuracyTier::Fast32,
    ];

    /// Stable CLI/fingerprint token of the tier.
    pub fn as_str(self) -> &'static str {
        match self {
            AccuracyTier::Exact => "exact",
            AccuracyTier::EarlyStop => "early-stop",
            AccuracyTier::Fast32 => "fast32",
        }
    }

    /// Parses a CLI token (`exact`, `early-stop`/`earlystop`, `fast32`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "exact" => Some(AccuracyTier::Exact),
            "early-stop" | "earlystop" | "early_stop" => Some(AccuracyTier::EarlyStop),
            "fast32" | "f32" => Some(AccuracyTier::Fast32),
            _ => None,
        }
    }
}

impl std::fmt::Display for AccuracyTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for AccuracyTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| {
            format!("unknown accuracy tier {s:?} (expected exact, early-stop or fast32)")
        })
    }
}

/// Iteration budget plus accuracy tier — the knobs the batched decoder
/// ([`super::TurboCode::decode_batch`]) and the link simulator thread
/// from the system configuration down to the SISO kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecoderConfig {
    /// Maximum turbo iterations (early stops may reduce the count).
    pub iterations: usize,
    /// Arithmetic/stopping tier.
    pub tier: AccuracyTier,
}

impl DecoderConfig {
    /// The reference configuration: `iterations` at the `Exact` tier.
    pub fn exact(iterations: usize) -> Self {
        Self {
            iterations,
            tier: AccuracyTier::Exact,
        }
    }

    /// A configuration at an explicit tier.
    pub fn new(iterations: usize, tier: AccuracyTier) -> Self {
        Self { iterations, tier }
    }
}

/// Decoder output: hard bits, posterior LLRs and convergence info.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecodeResult {
    /// Hard-decision information bits.
    pub bits: Vec<u8>,
    /// Posterior LLRs of the information bits (positive favours 0).
    pub llrs: Vec<f64>,
    /// Turbo iterations actually executed (early stopping may reduce it).
    pub iterations_run: usize,
}

impl DecodeResult {
    /// An empty result to be filled by
    /// [`MaxLogMapDecoder::decode_into`]; buffers grow to steady-state
    /// size on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable per-thread workspace of the turbo decoder.
///
/// Every vector is cleared and refilled in place each call, so after the
/// first decode the steady state performs no heap allocation anywhere in
/// the iteration loop.
#[derive(Debug, Clone, Default)]
pub struct TurboScratch {
    /// Decoder-1 systematic observations (`K + 3`, tail included).
    sys1: Vec<f64>,
    /// Decoder-1 parity observations (`K + 3`).
    p1: Vec<f64>,
    /// Decoder-2 (interleaved) systematic observations (`K + 3`).
    sys2: Vec<f64>,
    /// Decoder-2 parity observations (`K + 3`).
    p2: Vec<f64>,
    /// A-priori LLRs entering decoder 1 / decoder 2 (`K` each).
    apriori1: Vec<f64>,
    apriori2: Vec<f64>,
    /// Extrinsic outputs of the two decoders (`K` each).
    ext1: Vec<f64>,
    ext2: Vec<f64>,
    /// Posterior of decoder 1 (natural order) and decoder 2
    /// (interleaved order), plus the deinterleaved final posterior.
    post1: Vec<f64>,
    post2: Vec<f64>,
    posterior: Vec<f64>,
    /// Forward trellis metrics: one contiguous `(n+1) × RSC_STATES`
    /// row matrix.
    alpha: Vec<[f64; RSC_STATES]>,
    /// Per-step branch metrics `[½(spa+lp), ½(spa−lp)]`; the other two
    /// sign combinations are exact negations.
    gamma: Vec<[f64; 2]>,
}

impl TurboScratch {
    /// Fresh workspace; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the capacity of every owned heap buffer to `out` (in a
    /// stable order) — lets callers assert the steady-state
    /// zero-allocation invariant across decodes.
    pub fn heap_capacities(&self, out: &mut Vec<usize>) {
        out.extend([
            self.sys1.capacity(),
            self.p1.capacity(),
            self.sys2.capacity(),
            self.p2.capacity(),
            self.apriori1.capacity(),
            self.apriori2.capacity(),
            self.ext1.capacity(),
            self.ext2.capacity(),
            self.post1.capacity(),
            self.post2.capacity(),
            self.posterior.capacity(),
            self.alpha.capacity(),
            self.gamma.capacity(),
        ]);
    }
}

/// A Max-Log-MAP turbo decoder bound to one interleaver.
#[derive(Debug, Clone)]
pub struct MaxLogMapDecoder<'a> {
    k: usize,
    interleaver: &'a TurboInterleaver,
    scale: f64,
}

impl<'a> MaxLogMapDecoder<'a> {
    /// Creates a decoder for block length `k` using `interleaver`.
    ///
    /// # Panics
    ///
    /// Panics if the interleaver length differs from `k`.
    pub fn new(k: usize, interleaver: &'a TurboInterleaver) -> Self {
        assert_eq!(interleaver.k(), k, "interleaver length mismatch");
        Self {
            k,
            interleaver,
            scale: EXTRINSIC_SCALE,
        }
    }

    /// Overrides the extrinsic scaling factor (1.0 = plain max-log).
    pub fn with_extrinsic_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Decodes channel LLRs in the [`super::TurboCode::encode`] layout.
    ///
    /// Runs at most `iterations` turbo iterations, stopping early when
    /// both constituent decoders agree on every hard decision.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != 3k + 12`.
    pub fn decode(&self, llrs: &[f64], iterations: usize) -> DecodeResult {
        let mut scratch = TurboScratch::new();
        let mut out = DecodeResult::new();
        self.decode_into(llrs, iterations, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`MaxLogMapDecoder::decode`]: all intermediate
    /// state lives in `scratch` and the result is written into `out`,
    /// reusing both across calls. Output is bit-identical to `decode`.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != 3k + 12`.
    pub fn decode_into(
        &self,
        llrs: &[f64],
        iterations: usize,
        scratch: &mut TurboScratch,
        out: &mut DecodeResult,
    ) {
        self.decode_internal(llrs, iterations, scratch, out, None);
    }

    /// [`MaxLogMapDecoder::decode_into`] with an external validity check
    /// (typically the transport-block CRC): iteration stops as soon as
    /// the current hard decisions satisfy `stop`, including after the
    /// first half-iteration — when decoder 1 alone already produces a
    /// valid block, the second SISO pass is skipped entirely.
    ///
    /// The returned bits are guaranteed to be the first hard-decision
    /// vector that satisfied `stop`, or the normal
    /// agreement/iteration-limit output when none did (identical to
    /// `decode_into` in that case).
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != 3k + 12`.
    pub fn decode_into_with_stop(
        &self,
        llrs: &[f64],
        iterations: usize,
        scratch: &mut TurboScratch,
        out: &mut DecodeResult,
        stop: &dyn Fn(&[u8]) -> bool,
    ) {
        self.decode_internal(llrs, iterations, scratch, out, Some(stop));
    }

    fn decode_internal(
        &self,
        llrs: &[f64],
        iterations: usize,
        scratch: &mut TurboScratch,
        out: &mut DecodeResult,
        stop: StopCheck<'_>,
    ) {
        let k = self.k;
        assert_eq!(llrs.len(), 3 * k + 4 * TAIL_BITS, "LLR length mismatch");
        let sys = &llrs[0..k];
        let par1 = &llrs[k..2 * k];
        let par2 = &llrs[2 * k..3 * k];
        let tail1 = &llrs[3 * k..3 * k + 2 * TAIL_BITS];
        let tail2 = &llrs[3 * k + 2 * TAIL_BITS..3 * k + 4 * TAIL_BITS];
        let perm = self.interleaver.permutation();
        let inv = self.interleaver.inverse();

        // Decoder 1 observations: systematic + parity1 (+ its tail).
        scratch.sys1.clear();
        scratch.sys1.extend_from_slice(sys);
        scratch.p1.clear();
        scratch.p1.extend_from_slice(par1);
        // Decoder 2 observations: interleaved systematic + parity2 (+ tail).
        scratch.sys2.clear();
        scratch.sys2.extend(perm.iter().map(|&i| sys[i]));
        scratch.p2.clear();
        scratch.p2.extend_from_slice(par2);
        for t in 0..TAIL_BITS {
            scratch.sys1.push(tail1[2 * t]);
            scratch.p1.push(tail1[2 * t + 1]);
            scratch.sys2.push(tail2[2 * t]);
            scratch.p2.push(tail2[2 * t + 1]);
        }

        scratch.apriori1.clear();
        scratch.apriori1.resize(k, 0.0);
        let mut iterations_run = 0;
        for _ in 0..iterations.max(1) {
            iterations_run += 1;
            siso(
                &scratch.sys1,
                &scratch.p1,
                &scratch.apriori1,
                k,
                &mut scratch.alpha,
                &mut scratch.gamma,
                &mut scratch.ext1,
                &mut scratch.post1,
            );
            if let Some(stop) = stop {
                // CRC-checked early stop after the first half-iteration:
                // if decoder 1 alone already yields a valid block, skip
                // the second SISO pass (and all remaining iterations).
                hard_decisions(&scratch.post1, &mut out.bits);
                if stop(&out.bits) {
                    out.llrs.clear();
                    out.llrs.extend_from_slice(&scratch.post1);
                    out.iterations_run = iterations_run;
                    return;
                }
            }
            scratch.apriori2.clear();
            scratch
                .apriori2
                .extend(perm.iter().map(|&i| scratch.ext1[i] * self.scale));
            siso(
                &scratch.sys2,
                &scratch.p2,
                &scratch.apriori2,
                k,
                &mut scratch.alpha,
                &mut scratch.gamma,
                &mut scratch.ext2,
                &mut scratch.post2,
            );
            for (a, &i) in scratch.apriori1.iter_mut().zip(inv.iter()) {
                *a = scratch.ext2[i] * self.scale;
            }
            scratch.posterior.clear();
            scratch
                .posterior
                .extend(inv.iter().map(|&i| scratch.post2[i]));
            // Early stop: both decoders agree on all hard decisions.
            let agree = scratch
                .post1
                .iter()
                .zip(&scratch.posterior)
                .all(|(&a, &b)| (a >= 0.0) == (b >= 0.0));
            if agree {
                break;
            }
            if let Some(stop) = stop {
                hard_decisions(&scratch.posterior, &mut out.bits);
                if stop(&out.bits) {
                    out.llrs.clear();
                    out.llrs.extend_from_slice(&scratch.posterior);
                    out.iterations_run = iterations_run;
                    return;
                }
            }
        }

        hard_decisions(&scratch.posterior, &mut out.bits);
        out.llrs.clear();
        out.llrs.extend_from_slice(&scratch.posterior);
        out.iterations_run = iterations_run;
    }
}

/// Hard decisions from posterior LLRs (positive favours 0), reusing `out`.
fn hard_decisions(llrs: &[f64], out: &mut Vec<u8>) {
    out.clear();
    out.extend(llrs.iter().map(|&l| if l >= 0.0 { 0u8 } else { 1u8 }));
}

/// `max(a, b)` without NaN semantics baggage; inputs are never NaN here.
#[inline(always)]
fn fmax(a: f64, b: f64) -> f64 {
    if b > a {
        b
    } else {
        a
    }
}

/// One SISO Max-Log-MAP pass over a terminated RSC trellis.
///
/// `sys`/`par` have length `K + 3` (info + tail observations); `apriori`
/// has length `K`. Fills `extrinsic` and `posterior` for the `K` info
/// bits, using `alpha`/`gamma` as reusable trellis workspace.
///
/// # Structure
///
/// * Branch metrics are precomputed once per step: a step has only four
///   distinct metrics `½(±(ls+la) ± lp)`, two of which are exact
///   negations of the others, so each step stores `[g0, g1]` and the
///   sweeps use `-g1`/`-g0` for the other sign pair.
/// * Both sweeps are hand-unrolled against the fixed 8-state trellis of
///   `g1/g0 = (1+D+D³)/(1+D²+D³)` in *gather* form — each state reads
///   its two fixed predecessors (forward) or successors (backward) —
///   which keeps a whole metric row in registers and compiles to
///   straight-line FP code with no table lookups or branches.
/// * The backward sweep carries two beta rows and accumulates the
///   extrinsic/posterior outputs in the same pass, halving trellis
///   traversals versus the textbook three-sweep form.
///
/// # Bit-exactness
///
/// Outputs are bit-identical to the reference three-sweep scatter
/// formulation (per-transition `gamma = ½(bsym·(ls+la) + psym·lp)`,
/// reachability-guarded maxima):
///
/// * sign flips and the `½·` scaling are exact in IEEE-754, so the
///   shared-metric factoring reproduces the per-transition values;
/// * `max` over a transition set is order-independent for non-NaN
///   values, so gather vs. scatter accumulation is value-identical;
/// * dropping the reachability guard is exact because unreachable
///   states carry `-1e300`, which absorbs any branch metric
///   (`-1e300 + g == -1e300` exactly for `|g| < ~1e284`), leaving every
///   max unchanged;
/// * all three-term sums keep the reference association
///   `(alpha + gamma) + beta`.
///
/// `tests/decode_golden.rs` pins this equivalence on a corpus hashed to
/// the last LLR bit.
#[allow(clippy::too_many_arguments)]
fn siso(
    sys: &[f64],
    par: &[f64],
    apriori: &[f64],
    k: usize,
    alpha: &mut Vec<[f64; RSC_STATES]>,
    gamma: &mut Vec<[f64; 2]>,
    extrinsic: &mut Vec<f64>,
    posterior: &mut Vec<f64>,
) {
    let n = k + TAIL_BITS;
    debug_assert_eq!(sys.len(), n);
    debug_assert_eq!(par.len(), n);
    debug_assert_eq!(apriori.len(), k);

    // Forward recursion, computing and stashing the two branch metrics
    // per step on the way (the backward sweep re-reads them). Every row
    // t+1 is fully written, so only row 0 needs explicit initialization.
    gamma.clear();
    gamma.resize(n, [0.0; 2]);
    let mut init = [NEG_INF; RSC_STATES];
    init[0] = 0.0;
    alpha.resize(n + 1, init);
    alpha[0] = init;
    let [mut a0, mut a1, mut a2, mut a3, mut a4, mut a5, mut a6, mut a7] = init;
    for (t, (row, g_slot)) in alpha[1..].iter_mut().zip(gamma.iter_mut()).enumerate() {
        let la = if t < k { apriori[t] } else { 0.0 };
        let spa = sys[t] + la;
        let lp = par[t];
        let g0 = 0.5 * (spa + lp);
        let g1 = 0.5 * (spa - lp);
        *g_slot = [g0, g1];
        let g2 = -g1;
        let g3 = -g0;
        let b0 = fmax(a0 + g0, a4 + g3);
        let b1 = fmax(a0 + g3, a4 + g0);
        let b2 = fmax(a1 + g1, a5 + g2);
        let b3 = fmax(a1 + g2, a5 + g1);
        let b4 = fmax(a2 + g2, a6 + g1);
        let b5 = fmax(a2 + g1, a6 + g2);
        let b6 = fmax(a3 + g3, a7 + g0);
        let b7 = fmax(a3 + g0, a7 + g3);
        *row = [b0, b1, b2, b3, b4, b5, b6, b7];
        (a0, a1, a2, a3, a4, a5, a6, a7) = (b0, b1, b2, b3, b4, b5, b6, b7);
    }

    // Backward recursion (terminated: final state 0), fused with the
    // extrinsic/posterior accumulation: step t needs only alpha[t],
    // gamma[t] and beta[t+1], so one reverse sweep produces everything
    // with two beta rows instead of a full matrix. Tail steps (t >= k,
    // no info bit) only advance beta; the info steps then run a fully
    // iterator-driven reverse zip, so neither loop bounds-checks.
    extrinsic.clear();
    extrinsic.resize(k, 0.0);
    posterior.clear();
    posterior.resize(k, 0.0);
    let mut beta = [NEG_INF; RSC_STATES];
    beta[0] = 0.0;
    for &[g0, g1] in gamma[k..].iter().rev() {
        let g2 = -g1;
        let g3 = -g0;
        let [bn0, bn1, bn2, bn3, bn4, bn5, bn6, bn7] = beta;
        beta = [
            fmax(g0 + bn0, g3 + bn1),
            fmax(g1 + bn2, g2 + bn3),
            fmax(g1 + bn5, g2 + bn4),
            fmax(g0 + bn7, g3 + bn6),
            fmax(g0 + bn1, g3 + bn0),
            fmax(g1 + bn3, g2 + bn2),
            fmax(g1 + bn4, g2 + bn5),
            fmax(g0 + bn6, g3 + bn7),
        ];
    }
    let info = gamma[..k]
        .iter()
        .zip(alpha[..k].iter())
        .zip(sys[..k].iter().zip(apriori.iter()))
        .zip(posterior.iter_mut().zip(extrinsic.iter_mut()))
        .rev();
    for (((&[g0, g1], arow), (&ls, &la)), (p_slot, e_slot)) in info {
        let g2 = -g1;
        let g3 = -g0;
        let [bn0, bn1, bn2, bn3, bn4, bn5, bn6, bn7] = beta;
        // Posterior LLR of info bit t from alpha[t], gamma[t], beta[t+1].
        let [a0, a1, a2, a3, a4, a5, a6, a7] = *arow;
        let max0 = fmax(
            fmax(
                fmax(a0 + g0 + bn0, a1 + g1 + bn2),
                fmax(a2 + g1 + bn5, a3 + g0 + bn7),
            ),
            fmax(
                fmax(a4 + g0 + bn1, a5 + g1 + bn3),
                fmax(a6 + g1 + bn4, a7 + g0 + bn6),
            ),
        );
        let max1 = fmax(
            fmax(
                fmax(a0 + g3 + bn1, a1 + g2 + bn3),
                fmax(a2 + g2 + bn4, a3 + g3 + bn6),
            ),
            fmax(
                fmax(a4 + g3 + bn0, a5 + g2 + bn2),
                fmax(a6 + g2 + bn5, a7 + g3 + bn7),
            ),
        );
        let l = max0 - max1;
        *p_slot = l;
        *e_slot = l - ls - la;
        beta = [
            fmax(g0 + bn0, g3 + bn1),
            fmax(g1 + bn2, g2 + bn3),
            fmax(g1 + bn5, g2 + bn4),
            fmax(g0 + bn7, g3 + bn6),
            fmax(g0 + bn1, g3 + bn0),
            fmax(g1 + bn3, g2 + bn2),
            fmax(g1 + bn4, g2 + bn5),
            fmax(g0 + bn6, g3 + bn7),
        ];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turbo::TurboCode;
    use dsp::rng::{random_bits, seeded, standard_normal};
    use dsp::stats::db_to_linear;

    fn siso_simple(sys: &[f64], par: &[f64], apriori: &[f64], k: usize) -> (Vec<f64>, Vec<f64>) {
        let mut alpha = Vec::new();
        let mut gamma = Vec::new();
        let mut ext = Vec::new();
        let mut post = Vec::new();
        siso(
            sys, par, apriori, k, &mut alpha, &mut gamma, &mut ext, &mut post,
        );
        (ext, post)
    }

    /// Reference three-sweep scatter-form SISO driven entirely by the
    /// [`NEXT_STATE`]/[`PARITY`] trellis tables (which themselves come
    /// from `transition()`). The production `siso` hand-unrolls that
    /// wiring; this guard keeps the two in bit-exact lockstep, so a
    /// trellis edit that touches one but not the other fails loudly.
    fn siso_reference(sys: &[f64], par: &[f64], apriori: &[f64], k: usize) -> (Vec<f64>, Vec<f64>) {
        use crate::turbo::rsc::{NEXT_STATE, PARITY};
        let n = k + TAIL_BITS;
        let gamma: Vec<[f64; 4]> = (0..n)
            .map(|t| {
                let la = if t < k { apriori[t] } else { 0.0 };
                let spa = sys[t] + la;
                let lp = par[t];
                [
                    0.5 * (spa + lp),
                    0.5 * (spa - lp),
                    -(0.5 * (spa - lp)),
                    -(0.5 * (spa + lp)),
                ]
            })
            .collect();
        let mut alpha = vec![[NEG_INF; RSC_STATES]; n + 1];
        alpha[0][0] = 0.0;
        for t in 0..n {
            for s in 0..RSC_STATES {
                for b in 0..2 {
                    let cand = alpha[t][s] + gamma[t][2 * b + PARITY[s][b] as usize];
                    let ns = NEXT_STATE[s][b];
                    if cand > alpha[t + 1][ns] {
                        alpha[t + 1][ns] = cand;
                    }
                }
            }
        }
        let mut beta = vec![[NEG_INF; RSC_STATES]; n + 1];
        beta[n][0] = 0.0;
        for t in (0..n).rev() {
            for s in 0..RSC_STATES {
                for b in 0..2 {
                    let cand =
                        gamma[t][2 * b + PARITY[s][b] as usize] + beta[t + 1][NEXT_STATE[s][b]];
                    if cand > beta[t][s] {
                        beta[t][s] = cand;
                    }
                }
            }
        }
        let mut ext = vec![0.0; k];
        let mut post = vec![0.0; k];
        for t in 0..k {
            let mut max0 = NEG_INF;
            let mut max1 = NEG_INF;
            for s in 0..RSC_STATES {
                for b in 0..2 {
                    let m = alpha[t][s]
                        + gamma[t][2 * b + PARITY[s][b] as usize]
                        + beta[t + 1][NEXT_STATE[s][b]];
                    if b == 0 {
                        if m > max0 {
                            max0 = m;
                        }
                    } else if m > max1 {
                        max1 = m;
                    }
                }
            }
            let l = max0 - max1;
            post[t] = l;
            ext[t] = l - sys[t] - apriori[t];
        }
        (ext, post)
    }

    #[test]
    fn unrolled_siso_matches_table_driven_reference_bit_for_bit() {
        let k = 80;
        let mut rng = seeded(23);
        for trial in 0..8 {
            let n = k + TAIL_BITS;
            let sys: Vec<f64> = (0..n).map(|_| 3.0 * standard_normal(&mut rng)).collect();
            let par: Vec<f64> = (0..n).map(|_| 3.0 * standard_normal(&mut rng)).collect();
            let apriori: Vec<f64> = (0..k).map(|_| standard_normal(&mut rng)).collect();
            let (ext_a, post_a) = siso_simple(&sys, &par, &apriori, k);
            let (ext_b, post_b) = siso_reference(&sys, &par, &apriori, k);
            // Exact equality, not approximate: the unrolled gather form
            // must reproduce the scatter reference to the last bit.
            assert_eq!(ext_a, ext_b, "extrinsic diverged, trial {trial}");
            assert_eq!(post_a, post_b, "posterior diverged, trial {trial}");
        }
    }

    #[test]
    fn siso_decodes_single_rsc_cleanly() {
        // Encode with one RSC, decode with one SISO pass: strong LLRs must
        // produce matching hard decisions even without iteration.
        let k = 60;
        let mut rng = seeded(2);
        let bits = random_bits(&mut rng, k);
        let mut enc = crate::turbo::Rsc::new();
        let par: Vec<u8> = bits.iter().map(|&b| enc.step(b)).collect();
        let tail = enc.terminate();
        let mag = 4.0;
        let mut sys: Vec<f64> = bits.iter().map(|&b| mag * (1.0 - 2.0 * b as f64)).collect();
        let mut p: Vec<f64> = par.iter().map(|&b| mag * (1.0 - 2.0 * b as f64)).collect();
        for t in 0..TAIL_BITS {
            sys.push(mag * (1.0 - 2.0 * tail[2 * t] as f64));
            p.push(mag * (1.0 - 2.0 * tail[2 * t + 1] as f64));
        }
        let (_, post) = siso_simple(&sys, &p, &vec![0.0; k], k);
        for (i, (&b, &l)) in bits.iter().zip(&post).enumerate() {
            assert_eq!(b, if l >= 0.0 { 0 } else { 1 }, "bit {i}");
        }
    }

    #[test]
    fn early_stopping_reduces_iterations() {
        let k = 100;
        let code = TurboCode::new(k).unwrap();
        let mut rng = seeded(4);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 10.0 } else { -10.0 })
            .collect();
        let out = code.decode(&llrs, 8);
        assert!(out.iterations_run <= 2, "clean input should stop early");
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn awgn_waterfall_sanity() {
        // Rate-1/3 turbo at Eb/N0 = 2 dB over BPSK/AWGN should decode
        // nearly every 400-bit block; at -3 dB it should fail nearly every
        // block. This brackets the waterfall.
        let k = 400;
        let code = TurboCode::new(k).unwrap();
        let rate = k as f64 / code.coded_len() as f64;
        let run = |ebn0_db: f64, seed: u64| -> usize {
            let mut rng = seeded(seed);
            let mut block_errors = 0;
            let trials = 20;
            for _ in 0..trials {
                let bits = random_bits(&mut rng, k);
                let coded = code.encode(&bits);
                let ebn0 = db_to_linear(ebn0_db);
                let esn0 = ebn0 * rate; // per coded (BPSK) symbol
                let sigma2 = 1.0 / (2.0 * esn0);
                let llrs: Vec<f64> = coded
                    .iter()
                    .map(|&b| {
                        let x = 1.0 - 2.0 * b as f64;
                        let y = x + sigma2.sqrt() * standard_normal(&mut rng);
                        2.0 * y / sigma2
                    })
                    .collect();
                let out = code.decode(&llrs, 8);
                if out.bits != bits {
                    block_errors += 1;
                }
            }
            block_errors
        };
        assert_eq!(run(2.0, 10), 0, "2 dB should be error-free");
        assert!(run(-3.0, 11) >= 18, "-3 dB should almost always fail");
    }

    #[test]
    fn extrinsic_scale_override() {
        let k = 40;
        let code = TurboCode::new(k).unwrap();
        let il = code.interleaver().clone();
        let dec = MaxLogMapDecoder::new(k, &il).with_extrinsic_scale(1.0);
        let bits = vec![0u8; k];
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 3.0 } else { -3.0 })
            .collect();
        let out = dec.decode(&llrs, 4);
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn zero_llrs_give_some_decision() {
        let k = 40;
        let code = TurboCode::new(k).unwrap();
        let out = code.decode(&vec![0.0; code.coded_len()], 2);
        assert_eq!(out.bits.len(), k);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One scratch and result reused across decodes of different
        // blocks must reproduce fresh-scratch outputs exactly.
        let k = 80;
        let code = TurboCode::new(k).unwrap();
        let il = code.interleaver().clone();
        let dec = MaxLogMapDecoder::new(k, &il);
        let mut scratch = TurboScratch::new();
        let mut out = DecodeResult::new();
        let mut rng = seeded(17);
        for trial in 0..4 {
            let bits = random_bits(&mut rng, k);
            let coded = code.encode(&bits);
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| (if b == 0 { 2.0 } else { -2.0 }) + 0.8 * standard_normal(&mut rng))
                .collect();
            dec.decode_into(&llrs, 6, &mut scratch, &mut out);
            let fresh = dec.decode(&llrs, 6);
            assert_eq!(out, fresh, "trial {trial}");
        }
    }

    #[test]
    fn stop_check_skips_second_half_iteration() {
        let k = 100;
        let code = TurboCode::new(k).unwrap();
        let il = code.interleaver().clone();
        let dec = MaxLogMapDecoder::new(k, &il);
        let mut rng = seeded(4);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 10.0 } else { -10.0 })
            .collect();
        let mut scratch = TurboScratch::new();
        let mut out = DecodeResult::new();
        let expected = bits.clone();
        dec.decode_into_with_stop(&llrs, 8, &mut scratch, &mut out, &|cand: &[u8]| {
            cand == expected
        });
        assert_eq!(out.bits, bits);
        assert_eq!(
            out.iterations_run, 1,
            "clean input must stop after decoder 1 of iteration 1"
        );
    }

    #[test]
    fn never_satisfied_stop_matches_plain_decode() {
        let k = 60;
        let code = TurboCode::new(k).unwrap();
        let il = code.interleaver().clone();
        let dec = MaxLogMapDecoder::new(k, &il);
        let mut rng = seeded(9);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| (if b == 0 { 1.5 } else { -1.5 }) + 1.1 * standard_normal(&mut rng))
            .collect();
        let mut scratch = TurboScratch::new();
        let mut out = DecodeResult::new();
        dec.decode_into_with_stop(&llrs, 8, &mut scratch, &mut out, &|_: &[u8]| false);
        assert_eq!(out, dec.decode(&llrs, 8));
    }
}
