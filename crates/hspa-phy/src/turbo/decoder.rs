//! Iterative Max-Log-MAP turbo decoding.
//!
//! Two soft-in/soft-out (SISO) BCJR decoders exchange extrinsic
//! information through the internal interleaver. The max-log
//! approximation (`ln Σ eˣ ≈ max x`) with extrinsic scaling 0.75 is the
//! standard hardware-friendly variant used in HSPA-era receiver ASICs —
//! the same class of decoder the paper's system model assumes.

use super::interleaver::TurboInterleaver;
use super::rsc::{transition, RSC_STATES, TAIL_BITS};

const NEG_INF: f64 = -1e300;

/// Default extrinsic scaling factor compensating the max-log optimism.
pub const EXTRINSIC_SCALE: f64 = 0.75;

/// Decoder output: hard bits, posterior LLRs and convergence info.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    /// Hard-decision information bits.
    pub bits: Vec<u8>,
    /// Posterior LLRs of the information bits (positive favours 0).
    pub llrs: Vec<f64>,
    /// Turbo iterations actually executed (early stopping may reduce it).
    pub iterations_run: usize,
}

/// A Max-Log-MAP turbo decoder bound to one interleaver.
#[derive(Debug, Clone)]
pub struct MaxLogMapDecoder<'a> {
    k: usize,
    interleaver: &'a TurboInterleaver,
    scale: f64,
}

impl<'a> MaxLogMapDecoder<'a> {
    /// Creates a decoder for block length `k` using `interleaver`.
    ///
    /// # Panics
    ///
    /// Panics if the interleaver length differs from `k`.
    pub fn new(k: usize, interleaver: &'a TurboInterleaver) -> Self {
        assert_eq!(interleaver.k(), k, "interleaver length mismatch");
        Self {
            k,
            interleaver,
            scale: EXTRINSIC_SCALE,
        }
    }

    /// Overrides the extrinsic scaling factor (1.0 = plain max-log).
    pub fn with_extrinsic_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Decodes channel LLRs in the [`super::TurboCode::encode`] layout.
    ///
    /// Runs at most `iterations` turbo iterations, stopping early when
    /// both constituent decoders agree on every hard decision.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != 3k + 12`.
    pub fn decode(&self, llrs: &[f64], iterations: usize) -> DecodeResult {
        let k = self.k;
        assert_eq!(llrs.len(), 3 * k + 4 * TAIL_BITS, "LLR length mismatch");
        let sys = &llrs[0..k];
        let par1 = &llrs[k..2 * k];
        let par2 = &llrs[2 * k..3 * k];
        let tail1 = &llrs[3 * k..3 * k + 2 * TAIL_BITS];
        let tail2 = &llrs[3 * k + 2 * TAIL_BITS..3 * k + 4 * TAIL_BITS];

        // Decoder 1 observations: systematic + parity1 (+ its tail).
        let mut sys1 = Vec::with_capacity(k + TAIL_BITS);
        sys1.extend_from_slice(sys);
        let mut p1 = Vec::with_capacity(k + TAIL_BITS);
        p1.extend_from_slice(par1);
        for t in 0..TAIL_BITS {
            sys1.push(tail1[2 * t]);
            p1.push(tail1[2 * t + 1]);
        }

        // Decoder 2 observations: interleaved systematic + parity2 (+ tail).
        let sys_i = self.interleaver.interleave(sys);
        let mut sys2 = Vec::with_capacity(k + TAIL_BITS);
        sys2.extend_from_slice(&sys_i);
        let mut p2 = Vec::with_capacity(k + TAIL_BITS);
        p2.extend_from_slice(par2);
        for t in 0..TAIL_BITS {
            sys2.push(tail2[2 * t]);
            p2.push(tail2[2 * t + 1]);
        }

        let mut apriori1 = vec![0.0f64; k];
        let mut posterior = vec![0.0f64; k];
        let mut iterations_run = 0;
        for _ in 0..iterations.max(1) {
            iterations_run += 1;
            let (ext1, post1) = siso(&sys1, &p1, &apriori1, k);
            let apriori2: Vec<f64> = self
                .interleaver
                .interleave(&ext1)
                .iter()
                .map(|&e| e * self.scale)
                .collect();
            let (ext2, post2) = siso(&sys2, &p2, &apriori2, k);
            let ext2_d = self.interleaver.deinterleave(&ext2);
            for (a, &e) in apriori1.iter_mut().zip(&ext2_d) {
                *a = e * self.scale;
            }
            let post2_d = self.interleaver.deinterleave(&post2);
            posterior = post2_d.clone();
            // Early stop: both decoders agree on all hard decisions.
            let agree = post1
                .iter()
                .zip(&post2_d)
                .all(|(&a, &b)| (a >= 0.0) == (b >= 0.0));
            if agree {
                break;
            }
        }

        let bits = posterior
            .iter()
            .map(|&l| if l >= 0.0 { 0u8 } else { 1u8 })
            .collect();
        DecodeResult {
            bits,
            llrs: posterior,
            iterations_run,
        }
    }
}

/// One SISO Max-Log-MAP pass over a terminated RSC trellis.
///
/// `sys`/`par` have length `K + 3` (info + tail observations); `apriori`
/// has length `K`. Returns `(extrinsic, posterior)` for the `K` info bits.
fn siso(sys: &[f64], par: &[f64], apriori: &[f64], k: usize) -> (Vec<f64>, Vec<f64>) {
    let n = k + TAIL_BITS;
    debug_assert_eq!(sys.len(), n);
    debug_assert_eq!(par.len(), n);
    debug_assert_eq!(apriori.len(), k);

    // Trellis tables.
    let mut next = [[0usize; 2]; RSC_STATES];
    let mut pout = [[0.0f64; 2]; RSC_STATES];
    for s in 0..RSC_STATES {
        for b in 0..2 {
            let (ns, z) = transition(s as u8, b as u8);
            next[s][b] = ns as usize;
            // Antipodal parity: bit 0 → +1.
            pout[s][b] = 1.0 - 2.0 * z as f64;
        }
    }

    // Forward recursion.
    let mut alpha = vec![[NEG_INF; RSC_STATES]; n + 1];
    alpha[0][0] = 0.0;
    for t in 0..n {
        let la = if t < k { apriori[t] } else { 0.0 };
        let ls = sys[t];
        let lp = par[t];
        let a_t = alpha[t];
        let a_next = &mut alpha[t + 1];
        for (s, &a) in a_t.iter().enumerate() {
            if a <= NEG_INF {
                continue;
            }
            for b in 0..2 {
                let bsym = 1.0 - 2.0 * b as f64;
                let gamma = 0.5 * (bsym * (ls + la) + pout[s][b] * lp);
                let ns = next[s][b];
                let cand = a + gamma;
                if cand > a_next[ns] {
                    a_next[ns] = cand;
                }
            }
        }
    }

    // Backward recursion (terminated: final state 0).
    let mut beta = vec![[NEG_INF; RSC_STATES]; n + 1];
    beta[n][0] = 0.0;
    for t in (0..n).rev() {
        let la = if t < k { apriori[t] } else { 0.0 };
        let ls = sys[t];
        let lp = par[t];
        let (b_rest, b_tail) = beta.split_at_mut(t + 1);
        let b_t = &mut b_rest[t];
        let b_next = &b_tail[0];
        for (s, slot) in b_t.iter_mut().enumerate() {
            let mut best = NEG_INF;
            for b in 0..2 {
                let bsym = 1.0 - 2.0 * b as f64;
                let gamma = 0.5 * (bsym * (ls + la) + pout[s][b] * lp);
                let cand = gamma + b_next[next[s][b]];
                if cand > best {
                    best = cand;
                }
            }
            *slot = best;
        }
    }

    // Posterior LLRs for the information bits.
    let mut extrinsic = vec![0.0f64; k];
    let mut posterior = vec![0.0f64; k];
    for t in 0..k {
        let la = apriori[t];
        let ls = sys[t];
        let lp = par[t];
        let mut max0 = NEG_INF;
        let mut max1 = NEG_INF;
        for (s, &a) in alpha[t].iter().enumerate() {
            if a <= NEG_INF {
                continue;
            }
            for b in 0..2 {
                let bsym = 1.0 - 2.0 * b as f64;
                let gamma = 0.5 * (bsym * (ls + la) + pout[s][b] * lp);
                let m = a + gamma + beta[t + 1][next[s][b]];
                if b == 0 {
                    if m > max0 {
                        max0 = m;
                    }
                } else if m > max1 {
                    max1 = m;
                }
            }
        }
        let l = max0 - max1;
        posterior[t] = l;
        extrinsic[t] = l - ls - la;
    }
    (extrinsic, posterior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turbo::TurboCode;
    use dsp::rng::{random_bits, seeded, standard_normal};
    use dsp::stats::db_to_linear;

    #[test]
    fn siso_decodes_single_rsc_cleanly() {
        // Encode with one RSC, decode with one SISO pass: strong LLRs must
        // produce matching hard decisions even without iteration.
        let k = 60;
        let mut rng = seeded(2);
        let bits = random_bits(&mut rng, k);
        let mut enc = crate::turbo::Rsc::new();
        let par: Vec<u8> = bits.iter().map(|&b| enc.step(b)).collect();
        let tail = enc.terminate();
        let mag = 4.0;
        let mut sys: Vec<f64> = bits.iter().map(|&b| mag * (1.0 - 2.0 * b as f64)).collect();
        let mut p: Vec<f64> = par.iter().map(|&b| mag * (1.0 - 2.0 * b as f64)).collect();
        for t in 0..TAIL_BITS {
            sys.push(mag * (1.0 - 2.0 * tail[2 * t] as f64));
            p.push(mag * (1.0 - 2.0 * tail[2 * t + 1] as f64));
        }
        let (_, post) = siso(&sys, &p, &vec![0.0; k], k);
        for (i, (&b, &l)) in bits.iter().zip(&post).enumerate() {
            assert_eq!(b, if l >= 0.0 { 0 } else { 1 }, "bit {i}");
        }
    }

    #[test]
    fn early_stopping_reduces_iterations() {
        let k = 100;
        let code = TurboCode::new(k).unwrap();
        let mut rng = seeded(4);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 10.0 } else { -10.0 })
            .collect();
        let out = code.decode(&llrs, 8);
        assert!(out.iterations_run <= 2, "clean input should stop early");
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn awgn_waterfall_sanity() {
        // Rate-1/3 turbo at Eb/N0 = 2 dB over BPSK/AWGN should decode
        // nearly every 400-bit block; at -3 dB it should fail nearly every
        // block. This brackets the waterfall.
        let k = 400;
        let code = TurboCode::new(k).unwrap();
        let rate = k as f64 / code.coded_len() as f64;
        let run = |ebn0_db: f64, seed: u64| -> usize {
            let mut rng = seeded(seed);
            let mut block_errors = 0;
            let trials = 20;
            for _ in 0..trials {
                let bits = random_bits(&mut rng, k);
                let coded = code.encode(&bits);
                let ebn0 = db_to_linear(ebn0_db);
                let esn0 = ebn0 * rate; // per coded (BPSK) symbol
                let sigma2 = 1.0 / (2.0 * esn0);
                let llrs: Vec<f64> = coded
                    .iter()
                    .map(|&b| {
                        let x = 1.0 - 2.0 * b as f64;
                        let y = x + sigma2.sqrt() * standard_normal(&mut rng);
                        2.0 * y / sigma2
                    })
                    .collect();
                let out = code.decode(&llrs, 8);
                if out.bits != bits {
                    block_errors += 1;
                }
            }
            block_errors
        };
        assert_eq!(run(2.0, 10), 0, "2 dB should be error-free");
        assert!(run(-3.0, 11) >= 18, "-3 dB should almost always fail");
    }

    #[test]
    fn extrinsic_scale_override() {
        let k = 40;
        let code = TurboCode::new(k).unwrap();
        let il = code.interleaver().clone();
        let dec = MaxLogMapDecoder::new(k, &il).with_extrinsic_scale(1.0);
        let bits = vec![0u8; k];
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 3.0 } else { -3.0 })
            .collect();
        let out = dec.decode(&llrs, 4);
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn zero_llrs_give_some_decision() {
        let k = 40;
        let code = TurboCode::new(k).unwrap();
        let out = code.decode(&vec![0.0; code.coded_len()], 2);
        assert_eq!(out.bits.len(), k);
    }
}
