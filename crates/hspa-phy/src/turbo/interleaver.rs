//! The turbo-code internal interleaver (TS 25.212 §4.2.3.2.3).
//!
//! A prime-based block interleaver: the `K` input bits are written row by
//! row into an `R × C` matrix, each row is permuted by a
//! primitive-root-generated sequence, the rows themselves are permuted by
//! a fixed pattern, and the matrix is read column by column with dummy
//! positions pruned. Implemented exactly per the specification, including
//! the special `481 ≤ K ≤ 530` case.

use super::TurboError;

/// The standard-compliant internal interleaver for block length `K`.
///
/// # Example
///
/// ```
/// use hspa_phy::turbo::TurboInterleaver;
///
/// let il = TurboInterleaver::new(40)?;
/// let perm = il.permutation();
/// let mut sorted = perm.to_vec();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..40).collect::<Vec<_>>()); // a true permutation
/// # Ok::<(), hspa_phy::turbo::TurboError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurboInterleaver {
    k: usize,
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl TurboInterleaver {
    /// Builds the interleaver for block length `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::BlockLength`] if `k` is outside `40..=5114`.
    pub fn new(k: usize) -> Result<Self, TurboError> {
        if !(40..=5114).contains(&k) {
            return Err(TurboError::BlockLength { k });
        }
        let perm = build_permutation(k);
        debug_assert_eq!(perm.len(), k);
        let mut inv = vec![0usize; k];
        for (out_pos, &in_pos) in perm.iter().enumerate() {
            inv[in_pos] = out_pos;
        }
        Ok(Self { k, perm, inv })
    }

    /// Block length `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The permutation: `output[m] = input[permutation()[m]]`.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse permutation: `output[m] = input[inverse()[m]]`
    /// deinterleaves.
    pub fn inverse(&self) -> &[usize] {
        &self.inv
    }

    /// Applies the interleaver to a slice.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != K`.
    pub fn interleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.k, "interleaver length mismatch");
        self.perm.iter().map(|&i| input[i]).collect()
    }

    /// Applies the inverse permutation.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != K`.
    pub fn deinterleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.k, "deinterleaver length mismatch");
        self.inv.iter().map(|&i| input[i]).collect()
    }
}

/// Builds the raw permutation per the specification steps.
#[allow(clippy::needless_range_loop)] // index-based loops mirror the spec text
fn build_permutation(k: usize) -> Vec<usize> {
    // Step 1: number of rows R.
    let r = if (40..=159).contains(&k) {
        5
    } else if (160..=200).contains(&k) || (481..=530).contains(&k) {
        10
    } else {
        20
    };

    // Step 2: prime p and number of columns C.
    let (p, c) = if (481..=530).contains(&k) {
        (53usize, 53usize)
    } else {
        let mut p = 7usize; // smallest prime in the spec's table
        while k > r * (p + 1) || !is_prime(p) {
            p += 1;
            while !is_prime(p) {
                p += 1;
            }
        }
        let c = if k <= r * (p - 1) {
            p - 1
        } else if k <= r * p {
            p
        } else {
            p + 1
        };
        (p, c)
    };

    // Primitive root v of p (the spec's table lists the least one).
    let v = least_primitive_root(p);

    // Step 4 base sequence s(j), j = 0..p-2.
    let mut s = vec![0usize; p - 1];
    s[0] = 1;
    for j in 1..p - 1 {
        s[j] = (v * s[j - 1]) % p;
    }

    // Minimum prime integers q_i, gcd(q_i, p-1) = 1, strictly increasing.
    let mut q = vec![0usize; r];
    q[0] = 1;
    let mut candidate = 2usize;
    for i in 1..r {
        loop {
            if is_prime(candidate) && gcd(candidate, p - 1) == 1 {
                q[i] = candidate;
                candidate += 1;
                break;
            }
            candidate += 1;
        }
    }

    // Inter-row permutation pattern T.
    let t: Vec<usize> = match r {
        5 => vec![4, 3, 2, 1, 0],
        10 => vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0],
        20 => {
            if (2281..=2480).contains(&k) || (3161..=3210).contains(&k) {
                vec![
                    19, 9, 14, 4, 0, 2, 5, 7, 12, 18, 16, 13, 17, 15, 3, 1, 6, 11, 8, 10,
                ]
            } else {
                vec![
                    19, 9, 14, 4, 0, 2, 5, 7, 12, 18, 10, 8, 13, 17, 3, 1, 16, 6, 15, 11,
                ]
            }
        }
        _ => unreachable!("R is always 5, 10 or 20"),
    };

    // r_{T(i)} = q_i.
    let mut rr = vec![0usize; r];
    for i in 0..r {
        rr[t[i]] = q[i];
    }

    // Intra-row permutations U_i(j) for each original row i.
    let mut u = vec![vec![0usize; c]; r];
    for (i, ui) in u.iter_mut().enumerate() {
        match c.cmp(&p) {
            std::cmp::Ordering::Equal => {
                for (j, slot) in ui.iter_mut().enumerate().take(p - 1) {
                    *slot = s[(j * rr[i]) % (p - 1)];
                }
                ui[p - 1] = 0;
            }
            std::cmp::Ordering::Greater => {
                // C = p + 1
                for (j, slot) in ui.iter_mut().enumerate().take(p - 1) {
                    *slot = s[(j * rr[i]) % (p - 1)];
                }
                ui[p - 1] = 0;
                ui[p] = p;
            }
            std::cmp::Ordering::Less => {
                // C = p - 1
                for (j, slot) in ui.iter_mut().enumerate().take(p - 1) {
                    *slot = s[(j * rr[i]) % (p - 1)] - 1;
                }
            }
        }
    }
    // Special exchange when the matrix is exactly full and C = p + 1.
    if c == p + 1 && k == r * c {
        u[r - 1].swap(p, 0);
    }

    // Steps 5-6: read column by column from the row-permuted matrix,
    // pruning positions beyond K. Final row i is original row T(i).
    let mut out = Vec::with_capacity(k);
    for j in 0..c {
        for ti in t.iter().take(r) {
            let src = ti * c + u[*ti][j];
            if src < k {
                out.push(src);
            }
        }
    }
    out
}

fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least primitive root modulo prime `p` (matches the 25.212 table).
fn least_primitive_root(p: usize) -> usize {
    let phi = p - 1;
    let factors = prime_factors(phi);
    'outer: for v in 2..p {
        for &f in &factors {
            if mod_pow(v, phi / f, p) == 1 {
                continue 'outer;
            }
        }
        return v;
    }
    unreachable!("every prime has a primitive root")
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

fn mod_pow(mut base: usize, mut exp: usize, modulus: usize) -> usize {
    let mut result = 1usize;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_is_permutation(perm: &[usize], k: usize) {
        assert_eq!(perm.len(), k);
        let mut sorted = perm.to_vec();
        sorted.sort_unstable();
        for (i, &v) in sorted.iter().enumerate() {
            assert_eq!(i, v, "K = {k}: not a permutation");
        }
    }

    #[test]
    fn bijective_across_regimes() {
        // Covers R=5, R=10 (both bands), the p=53 special case, C=p-1,
        // C=p, C=p+1, and the alternate 20-row patterns.
        for k in [
            40, 41, 100, 159, 160, 200, 201, 320, 481, 530, 531, 1000, 2281, 2480, 3161, 3210,
            4000, 5114,
        ] {
            let il = TurboInterleaver::new(k).unwrap();
            assert_is_permutation(il.permutation(), k);
        }
    }

    #[test]
    fn full_sweep_small_lengths() {
        for k in 40..=400 {
            let il = TurboInterleaver::new(k).unwrap();
            assert_is_permutation(il.permutation(), k);
        }
    }

    #[test]
    fn interleave_deinterleave_roundtrip() {
        let il = TurboInterleaver::new(123).unwrap();
        let data: Vec<u32> = (0..123).collect();
        let shuffled = il.interleave(&data);
        assert_ne!(shuffled, data, "interleaver must not be identity");
        assert_eq!(il.deinterleave(&shuffled), data);
    }

    #[test]
    fn interleaver_has_spread() {
        // Adjacent input bits should land far apart — the property that
        // gives the turbo code its distance. Check minimum output spacing
        // of input neighbours exceeds a loose bound.
        let k = 320;
        let il = TurboInterleaver::new(k).unwrap();
        let mut pos = vec![0usize; k];
        for (out_idx, &in_idx) in il.permutation().iter().enumerate() {
            pos[in_idx] = out_idx;
        }
        let mut min_spread = usize::MAX;
        for i in 0..k - 1 {
            let d = pos[i].abs_diff(pos[i + 1]);
            min_spread = min_spread.min(d);
        }
        assert!(min_spread >= 5, "spread {min_spread} too small");
    }

    #[test]
    fn deterministic() {
        let a = TurboInterleaver::new(777).unwrap();
        let b = TurboInterleaver::new(777).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn helper_number_theory() {
        assert!(is_prime(2) && is_prime(53) && is_prime(257));
        assert!(!is_prime(1) && !is_prime(55));
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(prime_factors(60), vec![2, 3, 5]);
        assert_eq!(mod_pow(3, 4, 7), 4);
        // Spec table spot checks: least primitive roots.
        assert_eq!(least_primitive_root(7), 3);
        assert_eq!(least_primitive_root(41), 6);
        assert_eq!(least_primitive_root(191), 19);
        assert_eq!(least_primitive_root(53), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn always_a_permutation(k in 40usize..=5114) {
            let il = TurboInterleaver::new(k).unwrap();
            let mut sorted = il.permutation().to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), k);
        }

        #[test]
        fn roundtrip_any_length(k in 40usize..=600) {
            let il = TurboInterleaver::new(k).unwrap();
            let data: Vec<usize> = (0..k).collect();
            prop_assert_eq!(il.deinterleave(&il.interleave(&data)), data);
        }
    }
}
