//! The 8-state recursive systematic convolutional constituent encoder.
//!
//! Transfer function `g1(D)/g0(D)` with feedback polynomial
//! `g0 = 1 + D² + D³` (13 octal) and feedforward `g1 = 1 + D + D³`
//! (15 octal), per TS 25.212 §4.2.3.1.

/// Number of trellis states (2³).
pub const RSC_STATES: usize = 8;

/// Tail bits appended per constituent encoder stream (3 systematic +
/// 3 parity interleaved as x z x z x z → this constant counts the 3
/// trellis-termination steps).
pub const TAIL_BITS: usize = 3;

/// One constituent RSC encoder.
///
/// State encoding: `s = s0 + 2·s1 + 4·s2` where `s0` is the most recent
/// register bit (D¹) and `s2` the oldest (D³).
///
/// # Example
///
/// ```
/// use hspa_phy::turbo::Rsc;
///
/// let mut enc = Rsc::new();
/// let p0 = enc.step(1);
/// assert!(p0 <= 1);
/// let tail = enc.terminate();
/// assert_eq!(tail.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rsc {
    state: u8,
}

impl Rsc {
    /// Creates an encoder in the all-zero state.
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// Current trellis state (0..8).
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Encodes one input bit, returning the parity output bit.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `bit` is non-binary.
    pub fn step(&mut self, bit: u8) -> u8 {
        debug_assert!(bit <= 1, "non-binary input");
        let (next, parity) = transition(self.state, bit);
        self.state = next;
        parity
    }

    /// Drives the register to the all-zero state, returning the six tail
    /// bits in `x z x z x z` order (3GPP termination: the feedback bit is
    /// fed as input so the register flushes in [`TAIL_BITS`] steps).
    pub fn terminate(&mut self) -> Vec<u8> {
        self.terminate_array().to_vec()
    }

    /// Allocation-free [`Rsc::terminate`]: the six tail bits as an array.
    pub fn terminate_array(&mut self) -> [u8; 2 * TAIL_BITS] {
        let mut out = [0u8; 2 * TAIL_BITS];
        for t in 0..TAIL_BITS {
            let u = termination_input(self.state);
            let parity = self.step(u);
            out[2 * t] = u;
            out[2 * t + 1] = parity;
        }
        debug_assert_eq!(self.state, 0, "termination must reach state 0");
        out
    }
}

/// `NEXT_STATE[s][b]` — the trellis successor of state `s` under input
/// `b`, precomputed at compile time for the decoder's inner loops.
pub const NEXT_STATE: [[usize; 2]; RSC_STATES] = build_next_state();

/// `PARITY[s][b]` — the parity output along the `(s, b)` transition.
pub const PARITY: [[u8; 2]; RSC_STATES] = build_parity();

const fn build_next_state() -> [[usize; 2]; RSC_STATES] {
    let mut table = [[0usize; 2]; RSC_STATES];
    let mut s = 0;
    while s < RSC_STATES {
        let mut b = 0;
        while b < 2 {
            let (ns, _) = transition(s as u8, b as u8);
            table[s][b] = ns as usize;
            b += 1;
        }
        s += 1;
    }
    table
}

const fn build_parity() -> [[u8; 2]; RSC_STATES] {
    let mut table = [[0u8; 2]; RSC_STATES];
    let mut s = 0;
    while s < RSC_STATES {
        let mut b = 0;
        while b < 2 {
            let (_, z) = transition(s as u8, b as u8);
            table[s][b] = z;
            b += 1;
        }
        s += 1;
    }
    table
}

/// The trellis transition: given `state` and input `bit`, returns
/// `(next_state, parity)`.
#[inline]
pub const fn transition(state: u8, bit: u8) -> (u8, u8) {
    let s0 = state & 1;
    let s1 = (state >> 1) & 1;
    let s2 = (state >> 2) & 1;
    // Feedback: g0 = 1 + D² + D³ → d = u ⊕ s1 ⊕ s2.
    let d = bit ^ s1 ^ s2;
    // Parity: g1 = 1 + D + D³ → z = d ⊕ s0 ⊕ s2.
    let parity = d ^ s0 ^ s2;
    let next = (d | (s0 << 1) | (s1 << 2)) & 0x7;
    (next, parity)
}

/// The input bit that makes the feedback zero (used for termination).
#[inline]
pub fn termination_input(state: u8) -> u8 {
    let s1 = (state >> 1) & 1;
    let s2 = (state >> 2) & 1;
    s1 ^ s2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_zero_input_stays_zero() {
        let mut enc = Rsc::new();
        assert_eq!(enc.step(0), 0);
        assert_eq!(enc.state(), 0);
    }

    #[test]
    fn one_input_from_zero_state() {
        // d = 1, parity = d ⊕ 0 ⊕ 0 = 1, next state = 001.
        let (next, parity) = transition(0, 1);
        assert_eq!(parity, 1);
        assert_eq!(next, 1);
    }

    #[test]
    fn trellis_is_a_bijection_per_input() {
        // For each input bit, the state map must be a permutation of 0..8.
        for bit in [0u8, 1] {
            let mut seen = [false; RSC_STATES];
            for s in 0..RSC_STATES as u8 {
                let (ns, _) = transition(s, bit);
                assert!(!seen[ns as usize], "state collision");
                seen[ns as usize] = true;
            }
        }
    }

    #[test]
    fn termination_always_reaches_zero() {
        for start in 0..RSC_STATES as u8 {
            let mut enc = Rsc { state: start };
            let tail = enc.terminate();
            assert_eq!(enc.state(), 0, "start {start}");
            assert_eq!(tail.len(), 6);
        }
    }

    #[test]
    fn impulse_response_is_periodic() {
        // A recursive encoder's impulse response repeats with period 7
        // (2³ - 1) after the initial transient.
        let mut enc = Rsc::new();
        let first = enc.step(1);
        let mut outputs = vec![first];
        for _ in 0..21 {
            outputs.push(enc.step(0));
        }
        // Period-7 check on the tail of the response.
        for i in 1..8 {
            assert_eq!(outputs[i], outputs[i + 7], "position {i}");
        }
    }

    #[test]
    fn encoder_is_linear_over_gf2() {
        // parity(a ⊕ b) = parity(a) ⊕ parity(b) for linear codes (from the
        // zero state).
        let a = [1u8, 0, 1, 1, 0, 1, 0, 0];
        let b = [0u8, 1, 1, 0, 1, 1, 0, 1];
        let run = |bits: &[u8]| -> Vec<u8> {
            let mut e = Rsc::new();
            bits.iter().map(|&x| e.step(x)).collect()
        };
        let pa = run(&a);
        let pb = run(&b);
        let ab: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let pab = run(&ab);
        for i in 0..a.len() {
            assert_eq!(pab[i], pa[i] ^ pb[i], "position {i}");
        }
    }
}
