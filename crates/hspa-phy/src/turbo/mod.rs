//! The UMTS rate-1/3 turbo code (TS 25.212 §4.2.3).
//!
//! A parallel concatenation of two 8-state recursive systematic
//! convolutional (RSC) encoders with transfer function
//! `g1(D)/g0(D) = (1 + D + D³)/(1 + D² + D³)`, joined by the
//! standard-compliant internal block interleaver. Decoding is iterative
//! Max-Log-MAP with extrinsic scaling.
//!
//! ## Codeword layout
//!
//! For an information block of `K` bits the encoder emits `3K + 12` bits,
//! grouped by stream (this layout differs from the 25.212 serial bit order
//! but carries the identical information; rate matching operates per
//! stream):
//!
//! ```text
//! [ systematic: x₀..x_{K-1} | parity1: z₀..z_{K-1} | parity2: z'₀..z'_{K-1}
//!   | tail1: x_K z_K x_{K+1} z_{K+1} x_{K+2} z_{K+2}
//!   | tail2: x'_K z'_K x'_{K+1} z'_{K+1} x'_{K+2} z'_{K+2} ]
//! ```

mod batch;
mod decoder;
mod interleaver;
mod rsc;

pub use batch::{BatchStopCheck, TurboBatchScratch};
pub use decoder::{
    AccuracyTier, DecodeResult, DecoderConfig, MaxLogMapDecoder, TurboScratch, EXTRINSIC_SCALE,
};
pub use interleaver::TurboInterleaver;
pub use rsc::{Rsc, NEXT_STATE, PARITY, RSC_STATES, TAIL_BITS};

use std::fmt;

/// Error constructing a turbo code component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TurboError {
    /// Block length outside the 3GPP range `40..=5114`.
    BlockLength {
        /// The rejected length.
        k: usize,
    },
}

impl fmt::Display for TurboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TurboError::BlockLength { k } => {
                write!(f, "turbo block length {k} outside 40..=5114")
            }
        }
    }
}

impl std::error::Error for TurboError {}

/// The complete turbo codec for one block length.
///
/// # Example
///
/// ```
/// use hspa_phy::turbo::TurboCode;
///
/// let code = TurboCode::new(320)?;
/// assert_eq!(code.coded_len(), 3 * 320 + 12);
/// # Ok::<(), hspa_phy::turbo::TurboError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TurboCode {
    k: usize,
    interleaver: TurboInterleaver,
}

impl TurboCode {
    /// Creates the codec for information block length `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::BlockLength`] when `k` is outside the 3GPP
    /// range `40..=5114`.
    pub fn new(k: usize) -> Result<Self, TurboError> {
        let interleaver = TurboInterleaver::new(k)?;
        Ok(Self { k, interleaver })
    }

    /// Information block length `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Codeword length `3K + 12`.
    pub fn coded_len(&self) -> usize {
        3 * self.k + 4 * TAIL_BITS
    }

    /// The internal interleaver.
    pub fn interleaver(&self) -> &TurboInterleaver {
        &self.interleaver
    }

    /// Encodes `K` information bits into the `3K + 12`-bit codeword.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != K` or any value is non-binary.
    // alloc: cold(allocating convenience wrapper; the hot path calls encode_into)
    pub fn encode(&self, bits: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.coded_len());
        self.encode_into(bits, &mut out);
        out
    }

    /// Allocation-free [`TurboCode::encode`]: clears `out` and writes the
    /// codeword into it, reusing capacity. The constituent encoders run
    /// directly against the output vector (the second one reads its
    /// input through the interleaver permutation), so no intermediate
    /// parity or interleaved-bit vectors are built.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != K` or any value is non-binary.
    pub fn encode_into(&self, bits: &[u8], out: &mut Vec<u8>) {
        assert_eq!(bits.len(), self.k, "information block length mismatch");
        crate::bits::assert_binary(bits);
        out.clear();
        out.reserve(self.coded_len());
        out.extend_from_slice(bits);
        let mut enc1 = Rsc::new();
        out.extend(bits.iter().map(|&b| enc1.step(b)));
        let mut enc2 = Rsc::new();
        out.extend(
            self.interleaver
                .permutation()
                .iter()
                .map(|&i| enc2.step(bits[i])),
        );
        out.extend_from_slice(&enc1.terminate_array());
        out.extend_from_slice(&enc2.terminate_array());
    }

    /// Decodes channel LLRs (one per coded bit, in [`TurboCode::encode`]
    /// layout) with `iterations` turbo iterations.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != coded_len()`.
    pub fn decode(&self, llrs: &[f64], iterations: usize) -> DecodeResult {
        assert_eq!(llrs.len(), self.coded_len(), "LLR length mismatch");
        let decoder = MaxLogMapDecoder::new(self.k, &self.interleaver);
        decoder.decode(llrs, iterations)
    }

    /// Allocation-free [`TurboCode::decode`]: intermediate state lives in
    /// `scratch`, the result is written into `out`. Bit-identical to
    /// `decode`.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != coded_len()`.
    pub fn decode_into(
        &self,
        llrs: &[f64],
        iterations: usize,
        scratch: &mut TurboScratch,
        out: &mut DecodeResult,
    ) {
        assert_eq!(llrs.len(), self.coded_len(), "LLR length mismatch");
        let decoder = MaxLogMapDecoder::new(self.k, &self.interleaver);
        decoder.decode_into(llrs, iterations, scratch, out);
    }

    /// [`TurboCode::decode_into`] with an external validity check (the
    /// transport-block CRC in the link simulator): iteration stops as
    /// soon as the current hard decisions satisfy `stop`, skipping the
    /// second SISO pass when decoder 1 alone already produced a valid
    /// block. See [`MaxLogMapDecoder::decode_into_with_stop`].
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != coded_len()`.
    pub fn decode_into_with_stop(
        &self,
        llrs: &[f64],
        iterations: usize,
        scratch: &mut TurboScratch,
        out: &mut DecodeResult,
        stop: &dyn Fn(&[u8]) -> bool,
    ) {
        assert_eq!(llrs.len(), self.coded_len(), "LLR length mismatch");
        let decoder = MaxLogMapDecoder::new(self.k, &self.interleaver);
        decoder.decode_into_with_stop(llrs, iterations, scratch, out, stop);
    }

    /// Decodes every lane staged in `batch` together, in lockstep groups
    /// of 8/4/2 lanes plus a scalar remainder, under the accuracy tier
    /// and iteration budget in `cfg`. Lane `l`'s outputs (bits,
    /// posterior LLR bit patterns, iteration count) are bit-identical to
    /// the corresponding serial decode of that lane alone — the `Exact`
    /// tier matches [`TurboCode::decode_into`], `EarlyStop` matches
    /// [`TurboCode::decode_into_with_stop`] (the optional `stop` check
    /// receives the lane index alongside the candidate bits), and
    /// `Fast32` matches its own single-lane `f32` reference.
    ///
    /// # Panics
    ///
    /// Panics if `batch` was staged with a codeword length other than
    /// [`TurboCode::coded_len`].
    pub fn decode_batch(
        &self,
        cfg: DecoderConfig,
        batch: &mut TurboBatchScratch,
        stop: BatchStopCheck<'_>,
    ) {
        batch::decode_batch(self.k, &self.interleaver, cfg, batch, stop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::rng::{random_bits, seeded};
    use rand::Rng;

    fn to_llrs(coded: &[u8], magnitude: f64) -> Vec<f64> {
        coded
            .iter()
            .map(|&b| if b == 0 { magnitude } else { -magnitude })
            .collect()
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(TurboCode::new(39).is_err());
        assert!(TurboCode::new(5115).is_err());
        assert!(TurboCode::new(40).is_ok());
        assert!(TurboCode::new(5114).is_ok());
    }

    #[test]
    fn all_zero_codeword_is_zero() {
        let code = TurboCode::new(40).unwrap();
        let coded = code.encode(&[0u8; 40]);
        assert!(coded.iter().all(|&b| b == 0));
    }

    #[test]
    fn noiseless_roundtrip_various_k() {
        for k in [40usize, 100, 320, 530, 1000] {
            let code = TurboCode::new(k).unwrap();
            let mut rng = seeded(k as u64);
            let bits = random_bits(&mut rng, k);
            let coded = code.encode(&bits);
            assert_eq!(coded.len(), 3 * k + 12);
            let out = code.decode(&to_llrs(&coded, 5.0), 3);
            assert_eq!(out.bits, bits, "K = {k}");
        }
    }

    #[test]
    fn corrects_noisy_llrs() {
        // Flip a scattering of LLR signs and weaken others; the decoder
        // must still recover the message.
        let k = 200;
        let code = TurboCode::new(k).unwrap();
        let mut rng = seeded(77);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let mut llrs = to_llrs(&coded, 2.0);
        for llr in llrs.iter_mut() {
            *llr += 1.2 * dsp::rng::standard_normal(&mut rng);
        }
        let out = code.decode(&llrs, 8);
        assert_eq!(out.bits, bits);
        assert!(out.iterations_run <= 8);
    }

    #[test]
    fn erased_parity_still_decodes() {
        // Zero out all of parity2 (as heavy puncturing would): the code
        // degenerates to a single RSC code and must still decode clean
        // systematic+parity1 LLRs.
        let k = 120;
        let code = TurboCode::new(k).unwrap();
        let mut rng = seeded(5);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let mut llrs = to_llrs(&coded, 4.0);
        for llr in llrs.iter_mut().skip(2 * k).take(k) {
            *llr = 0.0;
        }
        let out = code.decode(&llrs, 6);
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn encoder_is_deterministic() {
        let code = TurboCode::new(64).unwrap();
        let mut rng = seeded(1);
        let bits = random_bits(&mut rng, 64);
        assert_eq!(code.encode(&bits), code.encode(&bits));
    }

    #[test]
    fn soft_output_signs_match_bits() {
        let k = 80;
        let code = TurboCode::new(k).unwrap();
        let mut rng = seeded(9);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let out = code.decode(&to_llrs(&coded, 6.0), 4);
        for (i, (&b, &l)) in bits.iter().zip(&out.llrs).enumerate() {
            assert_eq!(b, crate::bits::hard_decision(l), "bit {i}");
            assert!(l.abs() > 1.0, "weak posterior at {i}");
        }
    }

    #[test]
    fn random_errors_within_capability() {
        // BSC-like test: flip 4% of coded bits at strong magnitude.
        let k = 400;
        let code = TurboCode::new(k).unwrap();
        let mut rng = seeded(33);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let mut llrs = to_llrs(&coded, 3.0);
        let n = llrs.len();
        for _ in 0..n / 25 {
            let idx = rng.gen_range(0..n);
            llrs[idx] = -llrs[idx];
        }
        let out = code.decode(&llrs, 8);
        assert_eq!(out.bits, bits);
    }
}
